#include "trace/event_processor.h"

#include <algorithm>

#include "common/strings.h"
#include "specs/raft_mongo_spec.h"

namespace xmodel::trace {

using common::Status;
using common::StrCat;
using specs::RaftMongoSpec;

namespace {

// Mutable per-node working state during processing.
struct NodeView {
  std::string role = "Follower";
  int64_t term = 0;
  std::pair<int64_t, int64_t> commit_point{0, 0};
  std::vector<int64_t> oplog;
  // Inferred initial-sync data-image prefix: entries the node holds as data
  // but not as oplog history, so its trace events omit them. Prepended to
  // every subsequent logged oplog from this node (the paper's solution 4).
  std::vector<int64_t> image_prefix;
};

// True when `suffix` is a strict suffix of `full`.
bool IsStrictSuffix(const std::vector<int64_t>& suffix,
                    const std::vector<int64_t>& full) {
  if (suffix.size() >= full.size()) return false;
  return std::equal(suffix.begin(), suffix.end(),
                    full.end() - static_cast<int64_t>(suffix.size()));
}

tlax::State ToSpecState(const std::vector<NodeView>& nodes) {
  std::vector<std::string> roles;
  std::vector<int64_t> terms;
  std::vector<std::pair<int64_t, int64_t>> cps;
  std::vector<std::vector<int64_t>> oplogs;
  for (const NodeView& n : nodes) {
    roles.push_back(n.role);
    terms.push_back(n.term);
    cps.push_back(n.commit_point);
    oplogs.push_back(n.oplog);
  }
  return RaftMongoSpec::MakeState(roles, terms, cps, oplogs);
}

}  // namespace

ProcessedTrace EventProcessor::Process(
    const std::vector<TraceEvent>& events) const {
  ProcessedTrace out;
  std::vector<NodeView> nodes(options_.num_nodes);

  // The known initial state: every node a Follower at term 0 with an empty
  // oplog and no commit point.
  out.states.push_back(ToSpecState(nodes));
  out.actions.push_back("Init");

  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (e.node_id < 0 || e.node_id >= options_.num_nodes) {
      out.status = Status::InvalidArgument(
          StrCat("event ", i, " names unknown node ", e.node_id));
      return out;
    }
    NodeView& n = nodes[e.node_id];

    // Unlogged variables (partial-state logging): keep the previous value.
    if (!options_.fill_in_unlogged_variables &&
        (!e.role.has_value() || !e.term.has_value() ||
         !e.commit_point.has_value() || !e.oplog_terms.has_value())) {
      out.status = Status::InvalidArgument(
          StrCat("event ", i, " is partial but fill-in is disabled"));
      return out;
    }

    // Figure 3 role rule: a Leader event demotes everyone else; the script
    // assumes there are never two leaders at once.
    if (e.role.has_value()) {
      if (*e.role == "Leader") {
        for (NodeView& other : nodes) other.role = "Follower";
        n.role = "Leader";
      } else {
        n.role = *e.role;
      }
    }
    if (e.term.has_value()) n.term = *e.term;
    if (e.commit_point.has_value()) {
      n.commit_point = {e.commit_point->term, e.commit_point->index};
    }
    if (e.oplog_terms.has_value()) {
      const std::vector<int64_t>& logged = *e.oplog_terms;
      if (options_.fill_in_missing_oplog_entries) {
        // Initial-sync repair (the paper's solution 4): the implementation
        // copies only recent entries, so an initial-synced node's events
        // omit the data-image prefix for the rest of its life; the spec
        // copies the whole log. Detect the resync on an AppendOplog event
        // whose logged oplog is inconsistent with the node's repaired
        // history but IS a strict suffix of another node's log; remember
        // the inferred prefix and prepend it to this and all later events
        // from the node.
        std::vector<int64_t> repaired = n.image_prefix;
        repaired.insert(repaired.end(), logged.begin(), logged.end());
        // An AppendOplog event can only extend the log: a repaired log
        // that is shorter than the node's previous log, or that disagrees
        // on the shared prefix, signals a fresh initial sync.
        bool consistent_with_history =
            repaired.size() >= n.oplog.size() &&
            std::equal(n.oplog.begin(), n.oplog.end(), repaired.begin());
        // A second tell-tale: a "fresh" log that is not a prefix of any
        // other node's log (so it cannot be a normal append of the first
        // entries) but is a strict suffix of one.
        bool is_prefix_of_some = logged.empty();
        for (const NodeView& other : nodes) {
          if (&other == &n || logged.size() > other.oplog.size()) continue;
          if (std::equal(logged.begin(), logged.end(), other.oplog.begin())) {
            is_prefix_of_some = true;
            break;
          }
        }
        if (e.action == "AppendOplog" &&
            (!consistent_with_history || !is_prefix_of_some)) {
          for (const NodeView& other : nodes) {
            if (&other == &n) continue;
            if (!logged.empty() && IsStrictSuffix(logged, other.oplog)) {
              n.image_prefix.assign(other.oplog.begin(),
                                    other.oplog.end() -
                                        static_cast<int64_t>(logged.size()));
              repaired = other.oplog;
              break;
            }
          }
        }
        n.oplog = std::move(repaired);
      } else {
        n.oplog = logged;
      }
    }

    out.states.push_back(ToSpecState(nodes));
    out.actions.push_back(e.action);
  }
  return out;
}

}  // namespace xmodel::trace
