#ifndef XMODEL_TRACE_LOCK_TRACE_H_
#define XMODEL_TRACE_LOCK_TRACE_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "repl/lock_manager.h"
#include "specs/locking_spec.h"
#include "tlax/trace_check.h"

namespace xmodel::trace {

/// MBTC glue for the SECOND specification (experiment E8, §4.2.5): records
/// lock-manager acquire/release events and reconstructs the state sequence
/// the Locking spec describes.
///
/// Note how little of the RaftMongo pipeline is reusable here — different
/// events, different state reconstruction, different spec — which is the
/// paper's argument that the marginal cost of trace-checking an additional
/// specification stays close to the cost of the first.
class LockTraceRecorder {
 public:
  explicit LockTraceRecorder(int num_spec_contexts = 2)
      : num_spec_contexts_(num_spec_contexts) {}

  /// Attaches to a lock manager (replacing any previous observer).
  void Attach(repl::LockManager* manager);

  const std::vector<repl::LockEvent>& events() const { return events_; }
  void Clear();

  /// Rebuilds the state sequence: one Locking-spec state per event,
  /// preceded by the empty initial state. Operation contexts are renamed
  /// onto the spec's small context ids as they appear; fails when more
  /// than `num_spec_contexts` are ever active at once.
  common::Result<std::vector<tlax::State>> StateSequence() const;

  /// Runs the trace check against a LockingSpec with matching contexts.
  tlax::TraceCheckResult Check() const;

 private:
  int num_spec_contexts_;
  std::vector<repl::LockEvent> events_;
};

}  // namespace xmodel::trace

#endif  // XMODEL_TRACE_LOCK_TRACE_H_
