#ifndef XMODEL_TRACE_TRACE_LOGGER_H_
#define XMODEL_TRACE_TRACE_LOGGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "repl/network.h"
#include "repl/trace_sink.h"
#include "trace/trace_event.h"

namespace xmodel::trace {

struct TraceLoggerOptions {
  /// Log only variables that changed since the node's previous event; the
  /// post-processor fills the rest in (the cheaper logging mode the paper
  /// wishes it had used, §4.2.1/§6).
  bool partial_state_logging = false;
};

/// The logTlaPlusTraceEvent implementation (paper Figure 2): timestamps
/// each event with the shared simulation clock, sleeping (advancing the
/// virtual clock) until the millisecond value changes so that all events
/// across all nodes carry distinct, totally-ordered timestamps. Events are
/// appended to a per-node log file (an in-memory line buffer here).
class TraceLogger : public repl::ReplTraceSink {
 public:
  TraceLogger(repl::SimClock* clock, TraceLoggerOptions options = {})
      : clock_(clock), options_(options) {}

  void OnTraceEvent(const repl::ReplTraceEvent& event) override;

  /// Per-node log lines ("log files"), keyed by node id.
  const std::map<int, std::vector<std::string>>& logs() const {
    return logs_;
  }

  /// Log files as a dense vector (index = node id; empty logs for nodes
  /// that never emitted).
  std::vector<std::vector<std::string>> LogFiles(int num_nodes) const;

  /// Writes one `node<N>.log` file per node into `directory` (which must
  /// exist) — the on-disk shape of the paper's Figure 1 pipeline.
  common::Status WriteLogFiles(const std::string& directory,
                               int num_nodes) const;

  /// Reads every `node<N>.log` in `directory` back into per-node line
  /// vectors (index = N).
  static common::Result<std::vector<std::vector<std::string>>> ReadLogFiles(
      const std::string& directory);

  uint64_t events_logged() const { return events_logged_; }
  void Clear();

 private:
  repl::SimClock* clock_;
  TraceLoggerOptions options_;
  std::map<int, std::vector<std::string>> logs_;
  // Last logged values per node, for partial-state logging.
  std::map<int, repl::ReplTraceEvent> last_logged_;
  int64_t last_timestamp_ = -1;
  uint64_t events_logged_ = 0;
  // Cached registry handles for repl.node<N>.events.logged.
  std::map<int, obs::Counter*> node_counters_;
};

}  // namespace xmodel::trace

#endif  // XMODEL_TRACE_TRACE_LOGGER_H_
