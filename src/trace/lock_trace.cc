#include "trace/lock_trace.h"

#include <set>

#include "common/strings.h"

namespace xmodel::trace {

using common::Result;
using common::Status;
using common::StrCat;
using repl::LockEvent;
using specs::LockingSpec;

void LockTraceRecorder::Attach(repl::LockManager* manager) {
  manager->SetEventObserver(
      [this](const LockEvent& event) { events_.push_back(event); });
}

void LockTraceRecorder::Clear() { events_.clear(); }

namespace {

// Maps a LockManager resource onto the spec's 3-level chain (1-based).
int ResourceLevelIndex(const repl::ResourceId& resource) {
  switch (resource.level) {
    case repl::ResourceLevel::kGlobal:
      return 1;
    case repl::ResourceLevel::kDatabase:
      return 2;
    case repl::ResourceLevel::kCollection:
      return 3;
  }
  return 1;
}

}  // namespace

Result<std::vector<tlax::State>> LockTraceRecorder::StateSequence() const {
  // holdings[level-1] = list of (spec ctx, mode name).
  std::vector<std::vector<std::pair<int, std::string>>> holdings(
      LockingSpec::kNumResources);
  std::map<int64_t, int> ctx_names;  // opctx -> spec context id.
  std::set<int> free_ids;
  for (int i = 1; i <= num_spec_contexts_; ++i) free_ids.insert(i);

  std::vector<tlax::State> states;
  states.push_back(LockingSpec::MakeState(holdings));

  for (size_t i = 0; i < events_.size(); ++i) {
    const LockEvent& e = events_[i];
    int level = ResourceLevelIndex(e.resource);

    auto named = ctx_names.find(e.opctx);
    if (named == ctx_names.end()) {
      if (e.type == LockEvent::Type::kRelease) {
        return Status::Corruption(
            StrCat("event ", i, ": release by unknown opctx ", e.opctx));
      }
      if (free_ids.empty()) {
        return Status::ResourceExhausted(
            StrCat("event ", i, ": more than ", num_spec_contexts_,
                   " concurrently active operation contexts"));
      }
      named = ctx_names.emplace(e.opctx, *free_ids.begin()).first;
      free_ids.erase(free_ids.begin());
    }
    int ctx = named->second;

    auto& level_holdings = holdings[level - 1];
    if (e.type == LockEvent::Type::kAcquire) {
      level_holdings.emplace_back(ctx, repl::LockModeName(e.mode));
    } else {
      bool found = false;
      for (auto it = level_holdings.begin(); it != level_holdings.end();
           ++it) {
        if (it->first == ctx) {
          level_holdings.erase(it);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::Corruption(
            StrCat("event ", i, ": release of unheld lock at level ", level));
      }
      // Free the spec context id once the opctx holds nothing anywhere.
      bool holds_any = false;
      for (const auto& level_list : holdings) {
        for (const auto& [holder, mode] : level_list) {
          if (holder == ctx) holds_any = true;
        }
      }
      if (!holds_any) {
        ctx_names.erase(e.opctx);
        free_ids.insert(ctx);
      }
    }
    states.push_back(LockingSpec::MakeState(holdings));
  }
  return states;
}

tlax::TraceCheckResult LockTraceRecorder::Check() const {
  tlax::TraceCheckResult result;
  Result<std::vector<tlax::State>> states = StateSequence();
  if (!states.ok()) {
    result.status = states.status();
    return result;
  }
  std::vector<tlax::TraceState> trace;
  trace.reserve(states->size());
  for (const tlax::State& s : *states) {
    tlax::TraceState t;
    t.vars.emplace_back(s.var(LockingSpec::kHeld));
    trace.push_back(std::move(t));
  }
  specs::LockingConfig config;
  config.num_contexts = num_spec_contexts_;
  specs::LockingSpec spec(config);
  return tlax::TraceChecker().Check(spec, trace);
}

}  // namespace xmodel::trace
