#ifndef XMODEL_TRACE_EVENT_PROCESSOR_H_
#define XMODEL_TRACE_EVENT_PROCESSOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "tlax/state.h"
#include "trace/trace_event.h"

namespace xmodel::trace {

struct EventProcessorOptions {
  int num_nodes = 3;
  /// Fill in variables a partial-state event did not log, from the node's
  /// previous known state (§6's recommendation).
  bool fill_in_unlogged_variables = true;
  /// Repair the "Copying the oplog" discrepancy (§4.2.2, solution 4): when
  /// an initial-synced node logs an oplog that is a strict suffix of
  /// another node's, fill in the missing prefix entries, simulating the
  /// conformant whole-log copy the spec describes.
  bool fill_in_missing_oplog_entries = true;
};

/// The post-processed state sequence: one full replica-set state per trace
/// event, preceded by the known initial state (paper Figure 3).
struct ProcessedTrace {
  common::Status status;
  std::vector<tlax::State> states;
  /// Action names aligned with `states` ("Init" for the first).
  std::vector<std::string> actions;

  bool ok() const { return status.ok(); }
};

/// The Python post-processor's equivalent: merges per-node events into a
/// sequence of whole-replica-set states using the Figure 3 combination
/// rules:
///
///  - role: the script assumes at most one leader. An event with role
///    Leader demotes every other node to Follower; a Leader→Follower event
///    changes only that node.
///  - term, commitPoint, oplog: replace the acting node's values; other
///    nodes' values are unchanged.
class EventProcessor {
 public:
  explicit EventProcessor(EventProcessorOptions options)
      : options_(options) {}

  ProcessedTrace Process(const std::vector<TraceEvent>& events) const;

 private:
  EventProcessorOptions options_;
};

}  // namespace xmodel::trace

#endif  // XMODEL_TRACE_EVENT_PROCESSOR_H_
