#!/usr/bin/env python3
"""Validate xmodel observability artifacts.

Checks every file argument and exits nonzero on the first problem:

- Metrics snapshots (schema "xmodel.metrics.v1"): the `metrics` object must
  hold counter/gauge entries with a numeric `value`, and histogram entries
  whose bucket counts line up with their edges and total `count`.
- Bench reports (same schema plus a `bench` member, as written by
  bench/bench_util.h): additionally require `quick`, `exit_code`,
  `wall_seconds`, and a `results` object.
- Chrome trace files (a `traceEvents` member, as written by
  SpanTracer::WriteChromeJson): every event needs name/ph/ts/dur/pid/tid,
  with ph == "X" and non-negative ts/dur.
- Checker-family sanity (any snapshot containing checker.* metrics):
  `checker.fingerprint.load` must be a finite non-negative gauge (the
  sharded fingerprint table's aggregate records/buckets ratio) and
  `checker.workers.used` at least 1; `checker.worker<N>.expansions`
  per-worker counters must carry a well-formed worker index.
- Value-family sanity (any snapshot containing value.intern.* metrics):
  the intern-table gauges `value.intern.{hits,misses,live,bytes}` must all
  be present together, finite, and non-negative, with `live` never
  exceeding `misses` (every live rep was a miss once); when present,
  `checker.alloc.values_per_state` must be a finite non-negative gauge.
- Graph-family sanity (any snapshot containing checker.graph.* metrics):
  the recorded-graph gauges `checker.graph.{nodes,edges,dup_edges}` must
  all be present together, finite, and non-negative, with `dup_edges`
  never exceeding `edges` (a duplicate edge is still an edge).
- MBTCG-family sanity (any snapshot containing mbtcg.extract.* metrics):
  the extraction gauges `mbtcg.extract.{roots,cases,seconds}` must all be
  present together, finite, and non-negative.
- Worker-profile sanity (any snapshot containing the idle-time profiler's
  checker.worker<N>.{busy_ms,barrier_wait_ms,steal_ms,starve_ms} gauges):
  each worker index must be well-formed, every gauge finite and
  non-negative, and every profiled worker must carry busy_ms. A worker
  without barrier_wait_ms is only legal for a relaxed run — checker.policy
  must be present as 1 and the worker must carry the steal_ms/starve_ms
  pair instead. `checker.barrier.settle_ms` must be a finite non-negative
  gauge and `checker.barrier.idle_fraction` / `checker.idle_fraction`
  finite gauges in [0, 1].
- Exploration-policy sanity (any snapshot containing checker.policy or
  checker.worker<N>.steals): `checker.policy` must be a gauge valued 0
  (level) or 1 (relaxed); steal counters must carry well-formed, dense
  worker indexes and be finite and non-negative; a nonzero steal count
  requires checker.policy == 1 (level-sync never steals — a zero-valued
  steals family with policy 0 is legal, it is a relaxed registration left
  behind by a registry reset).
- Obs-HTTP sanity (any snapshot containing obs.http.* metrics): the
  `obs.http.{requests,bytes}` counters are published together and
  non-negative.
- Prometheus scrape bodies (non-JSON files, e.g. a saved `curl /metrics`):
  every sample line must parse as `name value`, every name must carry a
  preceding `# TYPE` declaration (histogram samples may use the
  `_bucket`/`_sum`/`_count` suffixes and a `{le="..."}` label), and the
  same per-family sanity checks run on the flattened counter/gauge values.
- Spill-family sanity (any snapshot containing checker.spill.* metrics):
  the out-of-core tier's core family `checker.spill.{bytes,
  frontier_segments,runs,probe_ms,merge_ms}` is flushed in one call, so
  the five must appear together — `bytes`/`frontier_segments` as
  counters, the rest as gauges, all finite and non-negative.
  The block-cache family `checker.spill.cache.{hits,misses,bytes}`
  (hits/misses counters, bytes gauge) and the compaction family
  `checker.spill.compact.{count,ms,backlog}` (count counter, ms/backlog
  gauges) are each all-or-nothing and require the core family — the
  same flush publishes all three groups. `checker.spill.generations`
  (end-of-run only) and the checkpoint pair `checker.checkpoint.{writes,
  ms}` additionally require the core family: checkpointing implies
  spilling. When one invocation validates several Prometheus scrape
  bodies of the SAME serving process (pass them in scrape order, as the
  obs-live CI job does), the monotone spill counters
  `checker_spill_bytes` / `checker_spill_frontier_segments` /
  `checker_spill_cache_hits` / `checker_spill_cache_misses` /
  `checker_spill_compact_count` / `checker_checkpoint_writes` must
  never move backwards between scrapes.
- Domain-family sanity (any snapshot containing analysis.domain.* metrics):
  per spec, the gauges `analysis.domain.<spec>.{state_bound,
  observed_distinct, unbounded_vars, exhaustive}` must appear together,
  finite and non-negative, with `exhaustive` boolean; `unbounded_vars > 0`
  forces `state_bound == 0` (the "unbounded" encoding), and an exhaustive
  probe with no unbounded variables must report a budget that is >= 1 and
  covers the observed distinct count.

Usage: tools/validate_metrics.py FILE [FILE...]
"""

import math

import json
import re
import sys


def fail(path, message):
    print(f"validate_metrics: {path}: {message}", file=sys.stderr)
    sys.exit(1)


def require(cond, path, message):
    if not cond:
        fail(path, message)


def validate_metric(path, name, entry):
    require(isinstance(entry, dict), path, f"metric {name!r} is not an object")
    kind = entry.get("kind")
    if kind in ("counter", "gauge"):
        require(isinstance(entry.get("value"), (int, float)), path,
                f"metric {name!r} has no numeric 'value'")
        if kind == "counter":
            require(entry["value"] >= 0, path,
                    f"counter {name!r} is negative: {entry['value']}")
    elif kind == "histogram":
        count = entry.get("count")
        buckets = entry.get("buckets")
        le = entry.get("le")
        require(isinstance(count, int) and count >= 0, path,
                f"histogram {name!r} has no non-negative 'count'")
        require(isinstance(entry.get("sum"), (int, float)), path,
                f"histogram {name!r} has no numeric 'sum'")
        require(isinstance(buckets, list) and isinstance(le, list), path,
                f"histogram {name!r} needs 'buckets' and 'le' arrays")
        require(len(buckets) == len(le) + 1, path,
                f"histogram {name!r}: {len(buckets)} buckets for "
                f"{len(le)} edges (want edges + 1 for +Inf)")
        require(le == sorted(le), path,
                f"histogram {name!r}: 'le' edges are not ascending")
        require(all(isinstance(b, int) and b >= 0 for b in buckets), path,
                f"histogram {name!r}: bucket counts must be non-negative ints")
        require(sum(buckets) == count, path,
                f"histogram {name!r}: buckets sum to {sum(buckets)}, "
                f"count says {count}")
    else:
        fail(path, f"metric {name!r} has unknown kind {kind!r}")


def validate_checker_family(path, metrics):
    """Cross-metric sanity for the parallel checker's checker.* family."""
    load = metrics.get("checker.fingerprint.load")
    if load is not None:
        require(load.get("kind") == "gauge", path,
                "checker.fingerprint.load must be a gauge")
        value = load.get("value")
        require(isinstance(value, (int, float)) and math.isfinite(value)
                and value >= 0, path,
                f"checker.fingerprint.load must be finite and >= 0, "
                f"got {value!r}")
    workers = metrics.get("checker.workers.used")
    if workers is not None:
        require(workers.get("kind") == "gauge", path,
                "checker.workers.used must be a gauge")
        require(workers.get("value", 0) >= 1, path,
                f"checker.workers.used must be >= 1, "
                f"got {workers.get('value')!r}")
    for name, entry in metrics.items():
        if name.startswith("checker.worker") and \
                name.endswith(".expansions"):
            index = name[len("checker.worker"):-len(".expansions")]
            require(index.isdigit(), path,
                    f"per-worker counter {name!r} has a malformed "
                    f"worker index {index!r}")
            require(entry.get("kind") == "counter", path,
                    f"{name!r} must be a counter")


def validate_value_family(path, metrics):
    """Cross-metric sanity for the interned value layer's value.* family."""
    intern_names = [f"value.intern.{leaf}"
                    for leaf in ("hits", "misses", "live", "bytes")]
    present = [name for name in intern_names if name in metrics]
    if present:
        missing = [name for name in intern_names if name not in metrics]
        require(not missing, path,
                f"intern gauges are published together; missing {missing}")
        for name in intern_names:
            entry = metrics[name]
            require(entry.get("kind") == "gauge", path,
                    f"{name!r} must be a gauge")
            value = entry.get("value")
            require(isinstance(value, (int, float)) and math.isfinite(value)
                    and value >= 0, path,
                    f"{name!r} must be finite and >= 0, got {value!r}")
        require(metrics["value.intern.live"]["value"] <=
                metrics["value.intern.misses"]["value"], path,
                "value.intern.live exceeds value.intern.misses — every "
                "live rep must have been interned by a miss")
    per_state = metrics.get("checker.alloc.values_per_state")
    if per_state is not None:
        require(per_state.get("kind") == "gauge", path,
                "checker.alloc.values_per_state must be a gauge")
        value = per_state.get("value")
        require(isinstance(value, (int, float)) and math.isfinite(value)
                and value >= 0, path,
                f"checker.alloc.values_per_state must be finite and >= 0, "
                f"got {value!r}")


def _policy_value(metrics):
    """checker.policy's value, or None when the gauge is absent."""
    policy = metrics.get("checker.policy")
    return policy.get("value") if policy is not None else None


def validate_worker_profile_family(path, metrics):
    """Cross-metric sanity for the worker idle-time profiler's gauges."""
    leaves = (".busy_ms", ".barrier_wait_ms", ".steal_ms", ".starve_ms")
    profiled = {}
    for name, entry in metrics.items():
        if not name.startswith("checker.worker"):
            continue
        for leaf in leaves:
            if name.endswith(leaf):
                index = name[len("checker.worker"):-len(leaf)]
                require(index.isdigit(), path,
                        f"per-worker gauge {name!r} has a malformed "
                        f"worker index {index!r}")
                require(entry.get("kind") == "gauge", path,
                        f"{name!r} must be a gauge")
                value = entry.get("value")
                require(isinstance(value, (int, float))
                        and math.isfinite(value) and value >= 0, path,
                        f"{name!r} must be finite and >= 0, got {value!r}")
                profiled.setdefault(int(index), set()).add(leaf)
    for index, worker_leaves in sorted(profiled.items()):
        require(".busy_ms" in worker_leaves, path,
                f"worker {index} publishes {sorted(worker_leaves)} without "
                f"busy_ms; every profiled worker is timed")
        require((".steal_ms" in worker_leaves) ==
                (".starve_ms" in worker_leaves), path,
                f"worker {index} publishes only one of steal_ms/starve_ms; "
                f"the relaxed profile publishes them together")
        if ".barrier_wait_ms" not in worker_leaves:
            # Only a relaxed run profiles without barriers, and it must
            # say so via checker.policy and the steal/starve pair.
            require(_policy_value(metrics) == 1, path,
                    f"worker {index} has busy_ms but no barrier_wait_ms "
                    f"and checker.policy is not 1 — only a relaxed run "
                    f"may omit the barrier profile")
            require(".steal_ms" in worker_leaves, path,
                    f"worker {index} omits barrier_wait_ms (relaxed) but "
                    f"publishes no steal_ms/starve_ms pair")
    if profiled:
        require(sorted(profiled) == list(range(len(profiled))), path,
                f"worker profile indexes are not dense from 0: "
                f"{sorted(profiled)}")
    settle = metrics.get("checker.barrier.settle_ms")
    if settle is not None:
        value = settle.get("value")
        require(settle.get("kind") == "gauge" and
                isinstance(value, (int, float)) and math.isfinite(value)
                and value >= 0, path,
                f"checker.barrier.settle_ms must be a finite non-negative "
                f"gauge, got {value!r}")
    for name in ("checker.barrier.idle_fraction", "checker.idle_fraction"):
        idle = metrics.get(name)
        if idle is not None:
            require(idle.get("kind") == "gauge", path,
                    f"{name} must be a gauge")
            value = idle.get("value")
            require(isinstance(value, (int, float)) and math.isfinite(value)
                    and 0 <= value <= 1, path,
                    f"{name} must be finite in [0, 1], got {value!r}")


def validate_policy_family(path, metrics):
    """Exploration-policy sanity: checker.policy + the steal counters."""
    policy_value = _policy_value(metrics)
    if "checker.policy" in metrics:
        require(metrics["checker.policy"].get("kind") == "gauge", path,
                "checker.policy must be a gauge")
        require(policy_value in (0, 1), path,
                f"checker.policy must be 0 (level) or 1 (relaxed), "
                f"got {policy_value!r}")
    steals = {}
    for name, entry in metrics.items():
        if name.startswith("checker.worker") and name.endswith(".steals"):
            index = name[len("checker.worker"):-len(".steals")]
            require(index.isdigit(), path,
                    f"steal counter {name!r} has a malformed worker "
                    f"index {index!r}")
            require(entry.get("kind") == "counter", path,
                    f"{name!r} must be a counter")
            value = entry.get("value")
            require(isinstance(value, (int, float)) and math.isfinite(value)
                    and value >= 0, path,
                    f"{name!r} must be finite and >= 0, got {value!r}")
            steals[int(index)] = value
    if steals:
        require(sorted(steals) == list(range(len(steals))), path,
                f"steal counter indexes are not dense from 0: "
                f"{sorted(steals)}")
        require("checker.policy" in metrics, path,
                "checker.worker<N>.steals without checker.policy — the "
                "relaxed engine publishes both")
        if any(value > 0 for value in steals.values()):
            require(policy_value == 1, path,
                    f"nonzero steal counts with checker.policy == "
                    f"{policy_value!r} — level-sync never steals")


def validate_obs_http_family(path, metrics):
    """Cross-metric sanity for the HTTP scrape endpoint's obs.http.*."""
    names = ["obs.http.requests", "obs.http.bytes"]
    present = [name for name in names if name in metrics]
    if not present:
        return
    missing = [name for name in names if name not in metrics]
    require(not missing, path,
            f"obs.http.* counters are published together; missing {missing}")
    for name in names:
        entry = metrics[name]
        require(entry.get("kind") == "counter", path,
                f"{name!r} must be a counter")
        value = entry.get("value")
        require(isinstance(value, (int, float)) and math.isfinite(value)
                and value >= 0, path,
                f"{name!r} must be finite and >= 0, got {value!r}")


def require_gauge_family(path, metrics, names):
    """Asserts `names` appear all-or-nothing as finite non-negative gauges."""
    present = [name for name in names if name in metrics]
    if not present:
        return False
    missing = [name for name in names if name not in metrics]
    require(not missing, path,
            f"{present[0].rsplit('.', 1)[0]}.* gauges are published "
            f"together; missing {missing}")
    for name in names:
        entry = metrics[name]
        require(entry.get("kind") == "gauge", path, f"{name!r} must be a gauge")
        value = entry.get("value")
        require(isinstance(value, (int, float)) and math.isfinite(value)
                and value >= 0, path,
                f"{name!r} must be finite and >= 0, got {value!r}")
    return True


def validate_graph_family(path, metrics):
    """Cross-metric sanity for the state graph's checker.graph.* family."""
    names = [f"checker.graph.{leaf}"
             for leaf in ("nodes", "edges", "dup_edges")]
    if require_gauge_family(path, metrics, names):
        require(metrics["checker.graph.dup_edges"]["value"] <=
                metrics["checker.graph.edges"]["value"], path,
                "checker.graph.dup_edges exceeds checker.graph.edges — a "
                "duplicate edge is still an edge")


def validate_mbtcg_family(path, metrics):
    """Cross-metric sanity for test-case extraction's mbtcg.extract.*."""
    names = [f"mbtcg.extract.{leaf}"
             for leaf in ("roots", "cases", "seconds")]
    require_gauge_family(path, metrics, names)


_SPILL_CORE = {
    "checker.spill.bytes": "counter",
    "checker.spill.frontier_segments": "counter",
    "checker.spill.runs": "gauge",
    "checker.spill.probe_ms": "gauge",
    "checker.spill.merge_ms": "gauge",
}

# Published by the same flush as the core family, but validated as their
# own all-or-nothing groups so older snapshots (pre block cache /
# background compaction) stay valid.
_SPILL_CACHE = {
    "checker.spill.cache.hits": "counter",
    "checker.spill.cache.misses": "counter",
    "checker.spill.cache.bytes": "gauge",
}

_SPILL_COMPACT = {
    "checker.spill.compact.count": "counter",
    "checker.spill.compact.ms": "gauge",
    "checker.spill.compact.backlog": "gauge",
}


def validate_spill_family(path, metrics):
    """Cross-metric sanity for the out-of-core checker.spill.* family.

    FlushSpillMetrics publishes the five core metrics in one call, so
    they are all-or-nothing; checker.spill.generations only lands in the
    final end-of-run flush, and the checker.checkpoint.* pair only when a
    checkpoint directory was configured — both imply the core family.
    """
    present = [name for name in _SPILL_CORE if name in metrics]
    core = bool(present)
    if core:
        missing = [name for name in _SPILL_CORE if name not in metrics]
        require(not missing, path,
                f"checker.spill.* core metrics are flushed together; "
                f"missing {missing}")
        for name, kind in _SPILL_CORE.items():
            entry = metrics[name]
            require(entry.get("kind") == kind, path,
                    f"{name!r} must be a {kind}")
            value = entry.get("value")
            require(isinstance(value, (int, float)) and math.isfinite(value)
                    and value >= 0, path,
                    f"{name!r} must be finite and >= 0, got {value!r}")
    for family, label in ((_SPILL_CACHE, "checker.spill.cache.*"),
                          (_SPILL_COMPACT, "checker.spill.compact.*")):
        present = [name for name in family if name in metrics]
        if not present:
            continue
        missing = [name for name in family if name not in metrics]
        require(not missing, path,
                f"{label} metrics are published together; missing {missing}")
        require(core, path,
                f"{label} without the core checker.spill.* family — the "
                f"same flush publishes both")
        for name, kind in family.items():
            entry = metrics[name]
            require(entry.get("kind") == kind, path,
                    f"{name!r} must be a {kind}")
            value = entry.get("value")
            require(isinstance(value, (int, float)) and math.isfinite(value)
                    and value >= 0, path,
                    f"{name!r} must be finite and >= 0, got {value!r}")
    generations = metrics.get("checker.spill.generations")
    if generations is not None:
        require(core, path,
                "checker.spill.generations without the core checker.spill.* "
                "family — the final flush publishes both")
        require(generations.get("kind") == "gauge", path,
                "checker.spill.generations must be a gauge")
        value = generations.get("value")
        require(isinstance(value, (int, float)) and math.isfinite(value)
                and value >= 0, path,
                f"checker.spill.generations must be finite and >= 0, "
                f"got {value!r}")
    ckpt_kinds = {"checker.checkpoint.writes": "counter",
                  "checker.checkpoint.ms": "gauge"}
    ckpt_present = [name for name in ckpt_kinds if name in metrics]
    if ckpt_present:
        missing = [name for name in ckpt_kinds if name not in metrics]
        require(not missing, path,
                f"checker.checkpoint.* metrics are published together; "
                f"missing {missing}")
        require(core, path,
                "checker.checkpoint.* without the core checker.spill.* "
                "family — checkpointing implies spilling")
        for name, kind in ckpt_kinds.items():
            entry = metrics[name]
            require(entry.get("kind") == kind, path,
                    f"{name!r} must be a {kind}")
            value = entry.get("value")
            require(isinstance(value, (int, float)) and math.isfinite(value)
                    and value >= 0, path,
                    f"{name!r} must be finite and >= 0, got {value!r}")


def validate_domain_family(path, metrics):
    """Cross-metric sanity for the abstract-domain analysis.domain.*."""
    leaves = ("state_bound", "observed_distinct", "unbounded_vars",
              "exhaustive")
    specs = set()
    for name in metrics:
        if not name.startswith("analysis.domain."):
            continue
        rest = name[len("analysis.domain."):]
        spec, _, leaf = rest.rpartition(".")
        require(spec and leaf in leaves, path,
                f"unknown analysis.domain gauge {name!r}")
        specs.add(spec)
    for spec in sorted(specs):
        names = [f"analysis.domain.{spec}.{leaf}" for leaf in leaves]
        require_gauge_family(path, metrics, names)
        bound = metrics[names[0]]["value"]
        observed = metrics[names[1]]["value"]
        unbounded = metrics[names[2]]["value"]
        exhaustive = metrics[names[3]]["value"]
        require(exhaustive in (0, 1), path,
                f"{names[3]!r} must be 0 or 1, got {exhaustive!r}")
        if unbounded > 0:
            require(bound == 0, path,
                    f"{spec}: {unbounded} unbounded variable(s) but "
                    f"state_bound is {bound}, want the 0 'unbounded' "
                    f"encoding")
        elif exhaustive == 1:
            require(bound >= 1, path,
                    f"{spec}: exhaustive probe with no unbounded variables "
                    f"must report a budget >= 1, got {bound}")
            require(bound >= observed, path,
                    f"{spec}: static budget {bound} is below the observed "
                    f"distinct count {observed} — the bound is unsound")


def validate_metrics_doc(path, doc):
    require(doc.get("schema") == "xmodel.metrics.v1", path,
            f"unexpected schema {doc.get('schema')!r}")
    metrics = doc.get("metrics")
    require(isinstance(metrics, dict), path, "'metrics' is not an object")
    for name, entry in metrics.items():
        validate_metric(path, name, entry)
    validate_families(path, metrics)
    return len(metrics)


def validate_families(path, metrics):
    """Runs every cross-metric family check over a name -> entry dict."""
    validate_checker_family(path, metrics)
    validate_worker_profile_family(path, metrics)
    validate_policy_family(path, metrics)
    validate_obs_http_family(path, metrics)
    validate_value_family(path, metrics)
    validate_graph_family(path, metrics)
    validate_mbtcg_family(path, metrics)
    validate_spill_family(path, metrics)
    validate_domain_family(path, metrics)


def validate_bench_doc(path, doc):
    n = validate_metrics_doc(path, doc)
    require(isinstance(doc.get("bench"), str) and doc["bench"], path,
            "'bench' must be a non-empty string")
    require(isinstance(doc.get("quick"), bool), path, "'quick' must be a bool")
    require(isinstance(doc.get("exit_code"), int), path,
            "'exit_code' must be an int")
    require(isinstance(doc.get("wall_seconds"), (int, float)), path,
            "'wall_seconds' must be numeric")
    require(isinstance(doc.get("results"), dict), path,
            "'results' must be an object")
    return f"bench {doc['bench']}: {n} metrics, {len(doc['results'])} results"


def validate_trace_doc(path, doc):
    events = doc.get("traceEvents")
    require(isinstance(events, list), path, "'traceEvents' is not an array")
    for i, event in enumerate(events):
        require(isinstance(event, dict), path, f"event {i} is not an object")
        for key in ("name", "ph", "ts", "dur", "pid", "tid"):
            require(key in event, path, f"event {i} is missing {key!r}")
        require(event["ph"] == "X", path,
                f"event {i}: ph is {event['ph']!r}, want 'X'")
        require(event["ts"] >= 0 and event["dur"] >= 0, path,
                f"event {i}: negative ts or dur")
    return f"trace: {len(events)} spans"


# Monotone spill counters remembered across the Prometheus scrape bodies
# of one invocation: name -> (value, path of the scrape that set it).
# Callers pass same-process scrapes in scrape order (the obs-live job's
# usage), so a backwards step means a counter regressed live.
_SCRAPE_MONOTONE_STATE = {}
_SCRAPE_MONOTONE_NAMES = ("checker_spill_bytes",
                          "checker_spill_frontier_segments",
                          "checker_spill_cache_hits",
                          "checker_spill_cache_misses",
                          "checker_spill_compact_count",
                          "checker_checkpoint_writes")


_PROM_SAMPLE = re.compile(
    r'^([A-Za-z_:][A-Za-z0-9_:]*)(\{le="[^"]*"\})?\s+(\S+)$')
_PROM_TYPE = re.compile(r"^# TYPE ([A-Za-z_:][A-Za-z0-9_:]*) "
                        r"(counter|gauge|histogram)$")


def validate_prometheus_text(path, text):
    """Validates a /metrics scrape body (Prometheus text exposition).

    Structure first — every sample must follow a `# TYPE` declaration and
    parse as `name value` (histograms via the `_bucket`/`_sum`/`_count`
    suffixes, `le`-labelled buckets only) — then the same targeted family
    sanity as the JSON path, on the underscore-flattened names.
    """
    declared = {}
    samples = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = _PROM_TYPE.match(line)
            require(m, path,
                    f"line {lineno}: malformed comment {line!r} (the "
                    f"exporter only writes '# TYPE name kind' lines)")
            declared[m.group(1)] = m.group(2)
            continue
        m = _PROM_SAMPLE.match(line)
        require(m, path, f"line {lineno}: malformed sample {line!r}")
        name, label, raw = m.groups()
        try:
            value = float(raw)
        except ValueError:
            fail(path, f"line {lineno}: sample {name!r} has a non-numeric "
                 f"value {raw!r}")
        base = name
        if name not in declared:
            for suffix in ("_bucket", "_sum", "_count"):
                stem = name[:-len(suffix)] if name.endswith(suffix) else None
                if stem and declared.get(stem) == "histogram":
                    base = stem
                    break
            else:
                fail(path, f"line {lineno}: sample {name!r} has no "
                     f"preceding # TYPE declaration")
        require(label is None or name.endswith("_bucket"), path,
                f"line {lineno}: only _bucket samples carry an le label")
        if declared[base] == "counter":
            require(math.isfinite(value) and value >= 0, path,
                    f"line {lineno}: counter {name!r} must be finite and "
                    f">= 0, got {raw}")
        if name in declared:
            samples[name] = value
    for name in declared:
        require(name in samples or declared[name] == "histogram", path,
                f"{name!r} is TYPE-declared but has no sample")

    def sample(name):
        return samples.get(name)

    for name in ("checker_barrier_idle_fraction", "checker_idle_fraction"):
        idle = sample(name)
        if idle is not None:
            require(math.isfinite(idle) and 0 <= idle <= 1, path,
                    f"{name} must be finite in [0, 1], got {idle!r}")
    policy = sample("checker_policy")
    if policy is not None:
        require(policy in (0, 1), path,
                f"checker_policy must be 0 (level) or 1 (relaxed), "
                f"got {policy!r}")
    settle = sample("checker_barrier_settle_ms")
    if settle is not None:
        require(math.isfinite(settle) and settle >= 0, path,
                f"checker_barrier_settle_ms must be finite and >= 0, "
                f"got {settle!r}")
    workers_used = sample("checker_workers_used")
    if workers_used is not None:
        require(workers_used >= 1, path,
                f"checker_workers_used must be >= 1, got {workers_used!r}")
    http = [name for name in ("obs_http_requests", "obs_http_bytes")
            if name in samples]
    if http:
        require(len(http) == 2, path,
                f"obs_http_* counters are published together; found "
                f"only {http}")
    profiled = {}
    steals = {}
    for name, value in samples.items():
        m = re.match(r"^checker_worker(\d+)_"
                     r"(busy_ms|barrier_wait_ms|steal_ms|starve_ms|steals)$",
                     name)
        if m is None:
            continue
        require(math.isfinite(value) and value >= 0, path,
                f"{name!r} must be finite and >= 0, got {value!r}")
        if m.group(2) == "steals":
            steals[int(m.group(1))] = value
        else:
            profiled.setdefault(int(m.group(1)), set()).add(m.group(2))
    for index, leaves in sorted(profiled.items()):
        require("busy_ms" in leaves, path,
                f"worker {index} publishes {sorted(leaves)} without "
                f"busy_ms; every profiled worker is timed")
        require(("steal_ms" in leaves) == ("starve_ms" in leaves), path,
                f"worker {index} publishes only one of steal_ms/starve_ms")
        if "barrier_wait_ms" not in leaves:
            require(policy == 1, path,
                    f"worker {index} has busy_ms but no barrier_wait_ms "
                    f"and checker_policy is not 1 — only a relaxed run "
                    f"may omit the barrier profile")
            require("steal_ms" in leaves, path,
                    f"worker {index} omits barrier_wait_ms (relaxed) but "
                    f"publishes no steal_ms/starve_ms pair")
    if profiled:
        require(sorted(profiled) == list(range(len(profiled))), path,
                f"worker profile indexes are not dense from 0: "
                f"{sorted(profiled)}")
    if steals:
        require(sorted(steals) == list(range(len(steals))), path,
                f"steal counter indexes are not dense from 0: "
                f"{sorted(steals)}")
        require(policy is not None, path,
                "checker_worker<N>_steals without checker_policy — the "
                "relaxed engine publishes both")
        if any(value > 0 for value in steals.values()):
            require(policy == 1, path,
                    f"nonzero steal counts with checker_policy == "
                    f"{policy!r} — level-sync never steals")
    spill_core = ("checker_spill_bytes", "checker_spill_frontier_segments",
                  "checker_spill_runs", "checker_spill_probe_ms",
                  "checker_spill_merge_ms")
    spill_present = [name for name in spill_core if name in samples]
    if spill_present:
        missing = [name for name in spill_core if name not in samples]
        require(not missing, path,
                f"checker_spill_* core metrics are flushed together; "
                f"missing {missing}")
        for name in spill_core:
            require(math.isfinite(samples[name]) and samples[name] >= 0,
                    path, f"{name!r} must be finite and >= 0, "
                    f"got {samples[name]!r}")
    for group, label in ((("checker_spill_cache_hits",
                          "checker_spill_cache_misses",
                          "checker_spill_cache_bytes"),
                         "checker_spill_cache_*"),
                        (("checker_spill_compact_count",
                          "checker_spill_compact_ms",
                          "checker_spill_compact_backlog"),
                         "checker_spill_compact_*")):
        group_present = [name for name in group if name in samples]
        if not group_present:
            continue
        missing = [name for name in group if name not in samples]
        require(not missing, path,
                f"{label} metrics are published together; missing {missing}")
        require(bool(spill_present), path,
                f"{label} without the core checker_spill_* family")
        for name in group:
            require(math.isfinite(samples[name]) and samples[name] >= 0,
                    path, f"{name!r} must be finite and >= 0, "
                    f"got {samples[name]!r}")
    for name in ("checker_spill_generations", "checker_checkpoint_writes",
                 "checker_checkpoint_ms"):
        if name in samples:
            require(bool(spill_present), path,
                    f"{name!r} without the core checker_spill_* family")
            require(math.isfinite(samples[name]) and samples[name] >= 0,
                    path, f"{name!r} must be finite and >= 0, "
                    f"got {samples[name]!r}")
    require(("checker_checkpoint_writes" in samples) ==
            ("checker_checkpoint_ms" in samples), path,
            "checker_checkpoint_* metrics are published together")
    for name in _SCRAPE_MONOTONE_NAMES:
        if name not in samples:
            continue
        previous = _SCRAPE_MONOTONE_STATE.get(name)
        if previous is not None:
            prev_value, prev_path = previous
            require(samples[name] >= prev_value, path,
                    f"monotone counter {name!r} moved backwards across "
                    f"scrapes: {prev_value} ({prev_path}) -> "
                    f"{samples[name]}")
        _SCRAPE_MONOTONE_STATE[name] = (samples[name], path)
    return f"prometheus: {len(declared)} metrics"


def validate_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        fail(path, f"cannot read: {e}")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        # Not JSON: a saved /metrics scrape body is the other artifact
        # shape CI captures ("# TYPE name kind" declarations give it away).
        if "# TYPE " in text:
            summary = validate_prometheus_text(path, text)
            print(f"validate_metrics: {path}: OK ({summary})")
            return
        fail(path, f"invalid JSON: {e}")
    require(isinstance(doc, dict), path, "top level is not an object")

    if "traceEvents" in doc:
        summary = validate_trace_doc(path, doc)
    elif "bench" in doc:
        summary = validate_bench_doc(path, doc)
    elif doc.get("schema") == "xmodel.metrics.v1":
        summary = f"{validate_metrics_doc(path, doc)} metrics"
    else:
        fail(path, "not a metrics snapshot, bench report, or trace file")
    print(f"validate_metrics: {path}: OK ({summary})")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        validate_file(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
