#!/usr/bin/env bash
# Tier-1 verification, twice: a plain Release build with warnings-as-errors,
# then a Debug build under AddressSanitizer + UndefinedBehaviorSanitizer.
# This is what CI runs; run it locally before sending a change.
#
# Usage: tools/check.sh [--plain-only|--asan-only]

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${jobs}"
  echo "=== ctest ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  echo "=== xmodel_lint (${build_dir}) ==="
  "${build_dir}/src/analysis/xmodel_lint"
}

if [[ "${mode}" != "--asan-only" ]]; then
  run_suite build -DCMAKE_BUILD_TYPE=Release -DXMODEL_WERROR=ON
fi

if [[ "${mode}" != "--plain-only" ]]; then
  # halt_on_error makes UBSan findings fail the run instead of just logging.
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  export ASAN_OPTIONS="detect_leaks=0"
  run_suite build-asan -DCMAKE_BUILD_TYPE=Debug -DXMODEL_WERROR=ON \
    -DXMODEL_SANITIZE=address,undefined
fi

echo "check.sh: all suites passed"
