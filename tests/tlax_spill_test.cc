// Unit tests for the out-of-core machinery: the SpillTier run format
// (seal, probe, compaction, corruption detection), FingerprintSet
// eviction exactness under a memory budget, and the FrontierSpool FIFO
// segment files. Includes a concurrent evict-vs-insert hammer that the
// TSan CI job runs to certify the copy/seal/erase locking protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/fileio.h"
#include "common/status.h"
#include "common/strings.h"
#include "tlax/fpset.h"
#include "tlax/fpset_spill.h"
#include "tlax/frontier_spill.h"
#include "tlax/state.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

using internal::LevelEntry;

std::string TestDir(const char* name) {
  std::string dir = common::StrCat(::testing::TempDir(), "/spill_", name);
  // Start from a clean slate: stale files from a previous run would make
  // orphan/adopt assertions flaky.
  std::vector<std::string> files;
  if (common::ListDirFiles(dir, &files).ok()) {
    for (const std::string& f : files) {
      common::RemoveFileIfExists(dir + "/" + f);
    }
  }
  return dir;
}

SpillTier::Entry MakeEntry(uint64_t fp) {
  SpillTier::EdgeData edge;
  edge.pred_fp = fp * 31;
  edge.order_key = fp ^ 0xabcdef;
  edge.depth = static_cast<int64_t>(fp % 97);
  edge.action = static_cast<uint16_t>(fp % 7);
  return {fp, edge};
}

std::vector<SpillTier::Entry> MakeEntries(uint64_t start, uint64_t count,
                                          uint64_t stride) {
  std::vector<SpillTier::Entry> entries;
  for (uint64_t i = 0; i < count; ++i) {
    entries.push_back(MakeEntry(start + i * stride));
  }
  return entries;
}

TEST(SpillTierTest, SealedRunRoundTripsEveryEntry) {
  SpillTier::Options options;
  options.dir = TestDir("roundtrip");
  options.block_entries = 16;  // Several blocks for 100 entries.
  SpillTier tier(options);

  const std::vector<SpillTier::Entry> entries = MakeEntries(10, 100, 3);
  ASSERT_TRUE(tier.SealRun(entries).ok());

  for (const SpillTier::Entry& e : entries) {
    SpillTier::EdgeData edge;
    ASSERT_TRUE(tier.FindOnDisk(e.first, &edge)) << "fp " << e.first;
    EXPECT_EQ(edge.pred_fp, e.second.pred_fp);
    EXPECT_EQ(edge.order_key, e.second.order_key);
    EXPECT_EQ(edge.depth, e.second.depth);
    EXPECT_EQ(edge.action, e.second.action);
  }
  // Absent fingerprints (between and beyond the stored ones) miss cleanly.
  SpillTier::EdgeData edge;
  EXPECT_FALSE(tier.FindOnDisk(11, &edge));
  EXPECT_FALSE(tier.FindOnDisk(0, &edge));
  EXPECT_FALSE(tier.FindOnDisk(1'000'000, &edge));
  EXPECT_TRUE(tier.status().ok());

  SpillTier::Stats stats = tier.stats();
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.generations, 1u);
  EXPECT_EQ(stats.spilled_records, 100u);
  EXPECT_GT(stats.bytes_written, 0u);
}

TEST(SpillTierTest, CompactionMergesRunsAndKeepsEveryRecord) {
  SpillTier::Options options;
  options.dir = TestDir("compact");
  options.block_entries = 8;
  options.compact_min_runs = 4;
  SpillTier tier(options);

  // Four disjoint runs with interleaved fingerprint ranges.
  for (uint64_t r = 0; r < 4; ++r) {
    ASSERT_TRUE(tier.SealRun(MakeEntries(100 + r, 50, 4)).ok());
  }
  EXPECT_EQ(tier.stats().runs, 4u);
  ASSERT_TRUE(tier.CompactIfNeeded().ok());

  SpillTier::Stats stats = tier.stats();
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.spilled_records, 200u);
  for (uint64_t r = 0; r < 4; ++r) {
    for (const SpillTier::Entry& e : MakeEntries(100 + r, 50, 4)) {
      SpillTier::EdgeData edge;
      ASSERT_TRUE(tier.FindOnDisk(e.first, &edge)) << "fp " << e.first;
      EXPECT_EQ(edge.pred_fp, e.second.pred_fp);
    }
  }
  // The four input files were replaced by the single merged one.
  std::vector<std::string> files;
  ASSERT_TRUE(common::ListDirFiles(options.dir, &files).ok());
  size_t run_files = 0;
  for (const std::string& f : files) {
    if (f.rfind("run-", 0) == 0) ++run_files;
  }
  EXPECT_EQ(run_files, 1u);
}

TEST(SpillTierTest, DeferredDeletesSurviveUntilPurge) {
  SpillTier::Options options;
  options.dir = TestDir("defer");
  options.compact_min_runs = 2;
  options.defer_deletes = true;
  SpillTier tier(options);
  ASSERT_TRUE(tier.SealRun(MakeEntries(10, 20, 2)).ok());
  ASSERT_TRUE(tier.SealRun(MakeEntries(11, 20, 2)).ok());
  ASSERT_TRUE(tier.CompactIfNeeded().ok());

  std::vector<std::string> files;
  ASSERT_TRUE(common::ListDirFiles(options.dir, &files).ok());
  EXPECT_EQ(files.size(), 3u) << "inputs retired but not yet deleted";
  tier.PurgeRetired();
  files.clear();
  ASSERT_TRUE(common::ListDirFiles(options.dir, &files).ok());
  EXPECT_EQ(files.size(), 1u);
}

TEST(SpillTierTest, AdoptRunsRoundTripsAndDropsOrphans) {
  SpillTier::Options options;
  options.dir = TestDir("adopt");
  std::vector<std::string> manifest;
  {
    SpillTier tier(options);
    ASSERT_TRUE(tier.SealRun(MakeEntries(5, 40, 5)).ok());
    ASSERT_TRUE(tier.SealRun(MakeEntries(7, 40, 5)).ok());
    for (const SpillTier::RunInfo& info : tier.run_infos()) {
      manifest.push_back(info.file);
    }
  }
  ASSERT_EQ(manifest.size(), 2u);
  // An extra sealed-but-unpublished run becomes an orphan on the next
  // resume: a resumed tier adopts the manifest (so its generation
  // counter sits past the adopted names), seals a fresh run, then dies
  // before any manifest names it.
  {
    SpillTier tier(options);
    ASSERT_TRUE(tier.AdoptRuns(manifest).ok());
    ASSERT_TRUE(tier.SealRun(MakeEntries(1'000'000, 5, 1)).ok());
  }

  SpillTier resumed(options);
  ASSERT_TRUE(resumed.AdoptRuns(manifest).ok());
  EXPECT_EQ(resumed.stats().spilled_records, 80u);
  ASSERT_TRUE(resumed.DropOrphans().ok());
  std::vector<std::string> files;
  ASSERT_TRUE(common::ListDirFiles(options.dir, &files).ok());
  EXPECT_EQ(files.size(), 2u);
  for (const SpillTier::Entry& e : MakeEntries(5, 40, 5)) {
    SpillTier::EdgeData edge;
    EXPECT_TRUE(resumed.FindOnDisk(e.first, &edge));
  }
  SpillTier::EdgeData edge;
  EXPECT_FALSE(resumed.FindOnDisk(1'000'000, &edge))
      << "orphaned run must not be probed";
  // New runs sealed after adoption must not collide with adopted names.
  ASSERT_TRUE(resumed.SealRun(MakeEntries(2'000'000, 5, 1)).ok());
  std::vector<SpillTier::RunInfo> infos = resumed.run_infos();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_NE(infos[2].file, infos[0].file);
  EXPECT_NE(infos[2].file, infos[1].file);
}

TEST(SpillTierTest, CorruptRunIsARefusedAdoption) {
  SpillTier::Options options;
  options.dir = TestDir("corrupt");
  std::string file;
  {
    SpillTier tier(options);
    ASSERT_TRUE(tier.SealRun(MakeEntries(3, 64, 3)).ok());
    file = tier.run_infos()[0].file;
  }
  const std::string path = options.dir + "/" + file;
  std::string contents;
  ASSERT_TRUE(common::ReadFileToString(path, &contents).ok());

  // Truncation.
  ASSERT_TRUE(common::WriteFileAtomic(
                  path, std::string_view(contents).substr(
                            0, contents.size() / 2))
                  .ok());
  {
    SpillTier tier(options);
    common::Status status = tier.AdoptRuns({file});
    EXPECT_EQ(status.code(), common::StatusCode::kCorruption)
        << status.ToString();
  }
  // Bit flip in the middle (an entry payload), full length.
  std::string garbled = contents;
  garbled[garbled.size() / 2] ^= 0x40;
  ASSERT_TRUE(common::WriteFileAtomic(path, garbled).ok());
  {
    SpillTier tier(options);
    common::Status status = tier.AdoptRuns({file});
    EXPECT_FALSE(status.ok());
  }
  // Pristine contents adopt fine again.
  ASSERT_TRUE(common::WriteFileAtomic(path, contents).ok());
  {
    SpillTier tier(options);
    EXPECT_TRUE(tier.AdoptRuns({file}).ok());
  }
}

TEST(SpillTierTest, FindBatchMatchesFindOnDisk) {
  SpillTier::Options options;
  options.dir = TestDir("findbatch");
  options.block_entries = 16;
  SpillTier tier(options);
  // Three disjoint runs with interleaved ranges, several blocks each.
  ASSERT_TRUE(tier.SealRun(MakeEntries(100, 120, 6)).ok());
  ASSERT_TRUE(tier.SealRun(MakeEntries(101, 120, 6)).ok());
  ASSERT_TRUE(tier.SealRun(MakeEntries(103, 120, 6)).ok());

  // A sorted batch mixing members of every run with absent keys below,
  // between, and above the stored ranges.
  std::vector<uint64_t> batch;
  for (uint64_t fp = 0; fp < 1'000; ++fp) batch.push_back(fp);
  std::vector<SpillTier::BatchHit> hits;
  tier.FindBatch(batch, &hits);
  ASSERT_EQ(hits.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    SpillTier::EdgeData edge;
    EXPECT_EQ(hits[i].found, tier.FindOnDisk(batch[i], &edge))
        << "fp " << batch[i];
  }
  EXPECT_TRUE(tier.status().ok());
}

TEST(SpillTierTest, CacheEvictionRedecodesBlocksCorrectly) {
  SpillTier::Options options;
  options.dir = TestDir("cache_evict");
  options.block_entries = 8;
  // Far smaller than the decoded footprint of all blocks, so sweeping
  // the whole run twice must evict and re-decode along the way.
  options.cache_bytes = 16 * 1024;
  SpillTier tier(options);
  const std::vector<SpillTier::Entry> entries = MakeEntries(10, 512, 3);
  ASSERT_TRUE(tier.SealRun(entries).ok());

  for (int sweep = 0; sweep < 2; ++sweep) {
    for (const SpillTier::Entry& e : entries) {
      SpillTier::EdgeData edge;
      ASSERT_TRUE(tier.FindOnDisk(e.first, &edge)) << "fp " << e.first;
      EXPECT_EQ(edge.pred_fp, e.second.pred_fp);
      EXPECT_EQ(edge.order_key, e.second.order_key);
      EXPECT_EQ(edge.depth, e.second.depth);
      EXPECT_EQ(edge.action, e.second.action);
    }
  }
  SpillTier::Stats stats = tier.stats();
  EXPECT_GT(stats.cache_hits, 0u);
  const uint64_t nblocks = (512 + 7) / 8;
  EXPECT_GT(stats.cache_misses, nblocks)
      << "a miss beyond the block count means an evicted block was "
         "re-decoded";
  EXPECT_LE(stats.cache_bytes, options.cache_bytes);
  EXPECT_TRUE(tier.status().ok());
}

TEST(SpillTierTest, BlockReReadAfterEvictionReverifiesChecksum) {
  SpillTier::Options options;
  options.dir = TestDir("block_sum");
  options.block_entries = 8;
  options.cache_bytes = 0;  // Every decoded probe re-reads the block.
  SpillTier tier(options);
  const std::vector<SpillTier::Entry> entries = MakeEntries(10, 64, 3);
  ASSERT_TRUE(tier.SealRun(entries).ok());
  SpillTier::EdgeData edge;
  ASSERT_TRUE(tier.FindOnDisk(entries[0].first, &edge));
  ASSERT_TRUE(tier.status().ok());

  // Garble one byte of the first block's edge sidecar IN PLACE (the live
  // tier maps the file, so a rename-replace would keep the old bytes
  // visible). The next decode of that block must fail its checksum
  // rather than hand back a silently wrong edge.
  const std::string path = options.dir + "/" + tier.run_infos()[0].file;
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  // 16 file header + 8 payload length + 8 count + 8*8 fps puts the
  // cursor on the first sidecar byte.
  ASSERT_EQ(std::fseek(f, 16 + 8 + 8 + 64, SEEK_SET), 0);
  const int orig = std::fgetc(f);
  ASSERT_NE(orig, EOF);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(orig ^ 0x5a, f);
  ASSERT_EQ(std::fclose(f), 0);

  EXPECT_FALSE(tier.FindOnDisk(entries[0].first, &edge));
  EXPECT_EQ(tier.status().code(), common::StatusCode::kCorruption)
      << tier.status().ToString();
}

TEST(SpillTierTest, BackgroundCompactionRacesProbesSafely) {
  SpillTier::Options options;
  options.dir = TestDir("bg_compact");
  options.block_entries = 16;
  options.compact_min_runs = 2;
  options.background_compact = true;
  options.cache_bytes = 8 * 1024;
  SpillTier tier(options);

  constexpr uint64_t kRuns = 12;
  constexpr uint64_t kPerRun = 200;
  std::atomic<uint64_t> sealed_runs{0};
  std::atomic<bool> stop{false};
  // Probe continuously (point and batched) while runs seal and the
  // background thread merges them out from underneath.
  std::vector<std::thread> probers;
  for (int t = 0; t < 2; ++t) {
    probers.emplace_back([&tier, &sealed_runs, &stop, t] {
      std::vector<uint64_t> batch;
      std::vector<SpillTier::BatchHit> hits;
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t visible = sealed_runs.load(std::memory_order_acquire);
        for (uint64_t r = 0; r < visible; ++r) {
          const uint64_t fp = 1'000 * (r + 1) + (t + 1);
          if (t == 0) {
            SpillTier::EdgeData edge;
            ASSERT_TRUE(tier.FindOnDisk(fp, &edge)) << "fp " << fp;
          } else {
            batch.assign({fp, fp + 1, 1'000'000 + fp});
            tier.FindBatch(batch, &hits);
            ASSERT_TRUE(hits[0].found) << "fp " << fp;
          }
        }
      }
    });
  }
  for (uint64_t r = 0; r < kRuns; ++r) {
    // Run r holds [1000*(r+1), 1000*(r+1) + kPerRun): disjoint ranges.
    ASSERT_TRUE(tier.SealRun(MakeEntries(1'000 * (r + 1), kPerRun, 1)).ok());
    sealed_runs.store(r + 1, std::memory_order_release);
  }
  // Let probes overlap the final merges, then wind down.
  tier.PauseCompaction();
  tier.ResumeCompaction();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : probers) t.join();
  tier.StopBackground();

  EXPECT_TRUE(tier.status().ok()) << tier.status().ToString();
  EXPECT_GE(tier.stats().compactions, 1u);
  EXPECT_EQ(tier.stats().spilled_records, kRuns * kPerRun);
  for (uint64_t r = 0; r < kRuns; ++r) {
    for (const SpillTier::Entry& e : MakeEntries(1'000 * (r + 1), kPerRun, 1)) {
      SpillTier::EdgeData edge;
      ASSERT_TRUE(tier.FindOnDisk(e.first, &edge)) << "fp " << e.first;
      EXPECT_EQ(edge.pred_fp, e.second.pred_fp);
    }
  }
}

TEST(SpillTierTest, BloomBitsAndBlockSizeOptionsRoundTrip) {
  for (const auto& [bloom_bits, block_entries] :
       std::vector<std::pair<uint64_t, size_t>>{{1, 16}, {24, 4096}}) {
    SpillTier::Options options;
    options.dir = TestDir("knobs");
    options.bloom_bits_per_key = bloom_bits;
    options.block_entries = block_entries;
    SpillTier tier(options);
    const std::vector<SpillTier::Entry> entries = MakeEntries(7, 300, 5);
    ASSERT_TRUE(tier.SealRun(entries).ok());
    std::vector<uint64_t> batch;
    for (const SpillTier::Entry& e : entries) batch.push_back(e.first);
    std::vector<SpillTier::BatchHit> hits;
    tier.FindBatch(batch, &hits);
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(hits[i].found)
          << "fp " << batch[i] << " bloom_bits " << bloom_bits
          << " block_entries " << block_entries;
    }
    SpillTier::EdgeData edge;
    EXPECT_FALSE(tier.FindOnDisk(8, &edge));
    EXPECT_TRUE(tier.status().ok());
  }
}

TEST(FpsetSpillTest, EvictionKeepsMembershipAndEdgesExact) {
  FingerprintSet::Options options;
  options.spill_dir = TestDir("fpset_evict");
  FingerprintSet set(options);
  ASSERT_TRUE(set.has_spill());

  for (uint64_t fp = 1; fp <= 500; ++fp) {
    FpInsert r = set.Insert(fp, /*pred_fp=*/fp / 2, /*action=*/2,
                            /*depth=*/static_cast<int64_t>(fp % 13),
                            /*order_key=*/fp, 0, nullptr);
    ASSERT_TRUE(r.inserted);
  }
  EXPECT_EQ(set.size(), 500u);
  EXPECT_EQ(set.hot_count(), 500u);
  ASSERT_TRUE(set.EvictAll().ok());
  EXPECT_EQ(set.hot_count(), 0u);
  EXPECT_EQ(set.size(), 500u) << "distinct count is unchanged by eviction";

  // Every evicted fingerprint is a revisit with its original depth…
  for (uint64_t fp = 1; fp <= 500; ++fp) {
    FpInsert r = set.Insert(fp, 999, 5, 7, 999'999, 0, nullptr);
    EXPECT_FALSE(r.inserted) << "fp " << fp;
    EXPECT_EQ(r.depth, static_cast<int64_t>(fp % 13));
  }
  EXPECT_EQ(set.size(), 500u);
  // …its discovery edge still resolves (trace rebuild path)…
  auto edge = set.GetEdge(123);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->pred_fp, 61u);
  EXPECT_EQ(edge->action, 2);
  EXPECT_EQ(edge->order_key, 123u);
  // …and genuinely new fingerprints still insert into the hot table.
  EXPECT_TRUE(set.Insert(9'999, 1, 1, 3, 1, 0, nullptr).inserted);
  EXPECT_EQ(set.size(), 501u);
  EXPECT_EQ(set.hot_count(), 1u);
  EXPECT_TRUE(set.spill_status().ok());
}

TEST(FpsetSpillTest, InsertOrDeferResolvesAgainstDiskInOneBatch) {
  FingerprintSet::Options options;
  options.spill_dir = TestDir("fpset_defer");
  FingerprintSet set(options);
  for (uint64_t fp = 1; fp <= 100; ++fp) {
    ASSERT_TRUE(set.Insert(fp, fp / 2, 1, static_cast<int64_t>(fp % 5),
                           fp, 0, nullptr)
                    .inserted);
  }
  ASSERT_TRUE(set.EvictAll().ok());
  ASSERT_EQ(set.size(), 100u);

  // A mixed batch: 50 is on disk, 1000/1001 are new, and 1000 revisited
  // within the batch merges into its provisional record (not pending
  // twice).
  std::vector<uint64_t> pending;
  FpInsert r = set.InsertOrDefer(50, 7, 3, 9, 50, 0, nullptr);
  EXPECT_TRUE(r.pending);
  pending.push_back(50);
  r = set.InsertOrDefer(1'000, 8, 2, 4, 60, 0, nullptr);
  EXPECT_TRUE(r.pending);
  pending.push_back(1'000);
  r = set.InsertOrDefer(1'000, 9, 2, 4, 61, 0, nullptr);
  EXPECT_FALSE(r.pending) << "hot revisit merges, not a second probe";
  EXPECT_FALSE(r.inserted);
  r = set.InsertOrDefer(1'001, 8, 2, 4, 62, 0, nullptr);
  EXPECT_TRUE(r.pending);
  pending.push_back(1'001);

  std::vector<uint8_t> on_disk;
  set.ResolvePending(pending, &on_disk);
  ASSERT_EQ(on_disk.size(), 3u);
  EXPECT_EQ(on_disk[0], 1) << "fp 50 was evicted: the disk copy wins";
  EXPECT_EQ(on_disk[1], 0);
  EXPECT_EQ(on_disk[2], 0);
  EXPECT_EQ(set.size(), 102u) << "two genuinely new fingerprints landed";
  // The dropped provisional's disk edge is intact; the new ones resolve
  // from the hot table.
  auto edge = set.GetEdge(50);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->pred_fp, 25u);
  EXPECT_EQ(edge->order_key, 50u);
  edge = set.GetEdge(1'000);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->pred_fp, 8u);
  // Re-inserting any of them is a plain revisit now.
  EXPECT_FALSE(set.Insert(50, 0, 0, 0, 0, 0, nullptr).inserted);
  EXPECT_FALSE(set.Insert(1'000, 0, 0, 0, 0, 0, nullptr).inserted);
  EXPECT_EQ(set.size(), 102u);
  EXPECT_TRUE(set.spill_status().ok());
}

TEST(FpsetSpillTest, BudgetTriggersGenerationsAndCompaction) {
  FingerprintSet::Options options;
  options.spill_dir = TestDir("fpset_budget");
  // ~96 bytes per record: a 4 KB budget forces eviction every ~42 inserts.
  options.memory_budget_bytes = 4 * 1024;
  FingerprintSet set(options);

  for (uint64_t fp = 1; fp <= 2'000; ++fp) {
    set.Insert(fp, fp / 2, 1, 0, fp, 0, nullptr);
    ASSERT_TRUE(set.EvictIfOverBudget().ok());
  }
  SpillTier::Stats stats = set.spill_stats();
  EXPECT_GE(stats.generations, 4u) << "the tight budget must force "
                                      "multiple spill generations";
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_EQ(set.size(), 2'000u);
  EXPECT_LE(set.hot_count() * 96, options.memory_budget_bytes + 96 * 64);
  for (uint64_t fp = 1; fp <= 2'000; ++fp) {
    EXPECT_FALSE(set.Insert(fp, 0, 0, 0, 0, 0, nullptr).inserted);
  }
  EXPECT_EQ(set.size(), 2'000u);
}

TEST(FpsetSpillTest, ConcurrentInsertsDuringEvictionsStayExact) {
  FingerprintSet::Options options;
  options.spill_dir = TestDir("fpset_hammer");
  options.num_shards = 8;
  FingerprintSet set(options);

  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 2'000;
  std::atomic<uint64_t> inserted{0};
  std::atomic<bool> stop{false};
  // Each fingerprint is inserted by exactly two racing threads; exactly
  // one must win, no matter how evictions interleave.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, &inserted, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t fp = 1 + (i * kThreads + t) % (kThreads * kPerThread / 2);
        if (set.Insert(fp, fp, 1, 0, fp, 0, nullptr).inserted) {
          inserted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread evictor([&set, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(set.EvictAll().ok());
    }
  });
  for (std::thread& t : threads) t.join();
  stop.store(true, std::memory_order_relaxed);
  evictor.join();

  EXPECT_EQ(inserted.load(), kThreads * kPerThread / 2);
  EXPECT_EQ(set.size(), kThreads * kPerThread / 2);
  EXPECT_TRUE(set.spill_status().ok());
  // And every fingerprint is still findable for trace rebuild.
  ASSERT_TRUE(set.EvictAll().ok());
  for (uint64_t fp = 1; fp <= kThreads * kPerThread / 2; ++fp) {
    EXPECT_TRUE(set.GetEdge(fp).has_value()) << "fp " << fp;
  }
}

State MakeState(int64_t x, int64_t y) {
  return State({Value::Int(x), Value::Int(y)});
}

LevelEntry MakeLevelEntry(int64_t i) {
  LevelEntry e;
  e.state = MakeState(i, i * 3);
  e.fp = Fingerprint(e.state);
  e.depth = i % 11;
  e.key = static_cast<uint64_t>(i) << 8;
  return e;
}

TEST(FrontierSpoolTest, FifoRoundTripAcrossSegmentsAndTail) {
  internal::FrontierSpool::Options options;
  options.dir = TestDir("spool");
  options.segment_entries = 16;
  internal::FrontierSpool spool(options);

  std::vector<LevelEntry> in;
  for (int64_t i = 0; i < 50; ++i) in.push_back(MakeLevelEntry(i));
  ASSERT_TRUE(spool.Append(std::move(in)).ok());
  EXPECT_EQ(spool.size(), 50u);
  EXPECT_EQ(spool.segments_written(), 3u) << "16+16+16 sealed, 2 in tail";

  int64_t next = 0;
  std::vector<LevelEntry> batch;
  while (true) {
    ASSERT_TRUE(spool.PopBatch(&batch).ok());
    if (batch.empty()) break;
    for (const LevelEntry& e : batch) {
      LevelEntry want = MakeLevelEntry(next);
      EXPECT_EQ(e.fp, want.fp) << "entry " << next;
      EXPECT_EQ(e.depth, want.depth);
      EXPECT_EQ(e.key, want.key);
      EXPECT_EQ(Fingerprint(e.state), want.fp)
          << "state round-trips to the same fingerprint";
      ++next;
    }
  }
  EXPECT_EQ(next, 50);
  EXPECT_TRUE(spool.empty());
  // Consumed segment files are deleted as they are popped.
  std::vector<std::string> files;
  ASSERT_TRUE(common::ListDirFiles(options.dir, &files).ok());
  EXPECT_TRUE(files.empty());
}

TEST(FrontierSpoolTest, SealAdoptResumeAndCorruption) {
  internal::FrontierSpool::Options options;
  options.dir = TestDir("spool_resume");
  options.segment_entries = 8;
  options.defer_deletes = true;
  std::vector<std::string> manifest;
  {
    internal::FrontierSpool spool(options);
    std::vector<LevelEntry> in;
    for (int64_t i = 0; i < 20; ++i) in.push_back(MakeLevelEntry(i));
    ASSERT_TRUE(spool.Append(std::move(in)).ok());
    ASSERT_TRUE(spool.Seal().ok());
    manifest = spool.live_segment_files();
  }
  ASSERT_EQ(manifest.size(), 3u) << "8+8+4 after sealing the tail";

  internal::FrontierSpool resumed(options);
  uint64_t entries = 0;
  ASSERT_TRUE(resumed.AdoptSegments(manifest, &entries).ok());
  EXPECT_EQ(entries, 20u);
  EXPECT_EQ(resumed.size(), 20u);
  int64_t next = 0;
  std::vector<LevelEntry> batch;
  while (true) {
    ASSERT_TRUE(resumed.PopBatch(&batch).ok());
    if (batch.empty()) break;
    for (const LevelEntry& e : batch) {
      EXPECT_EQ(e.fp, MakeLevelEntry(next).fp);
      ++next;
    }
  }
  EXPECT_EQ(next, 20);
  // defer_deletes: consumed files persist until the purge.
  std::vector<std::string> files;
  ASSERT_TRUE(common::ListDirFiles(options.dir, &files).ok());
  EXPECT_EQ(files.size(), 3u);
  resumed.PurgeConsumed();
  files.clear();
  ASSERT_TRUE(common::ListDirFiles(options.dir, &files).ok());
  EXPECT_TRUE(files.empty());

  // A garbled segment refuses adoption with a clean corruption error.
  {
    internal::FrontierSpool writer(options);
    std::vector<LevelEntry> in;
    for (int64_t i = 0; i < 8; ++i) in.push_back(MakeLevelEntry(i));
    ASSERT_TRUE(writer.Append(std::move(in)).ok());
    ASSERT_TRUE(writer.Seal().ok());
    manifest = writer.live_segment_files();
  }
  ASSERT_EQ(manifest.size(), 1u);
  const std::string path = options.dir + "/" + manifest[0];
  std::string contents;
  ASSERT_TRUE(common::ReadFileToString(path, &contents).ok());
  contents[contents.size() / 2] ^= 0x01;
  ASSERT_TRUE(common::WriteFileAtomic(path, contents).ok());
  internal::FrontierSpool broken(options);
  uint64_t ignored = 0;
  common::Status status = broken.AdoptSegments(manifest, &ignored);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace xmodel::tlax
