// Determinism of the parallel checker: every CheckResult field that the
// level-synchronous design promises to be worker-count-invariant —
// distinct states, generated states, diameter, frontier peak, violation
// kind, and the full counterexample trace (length AND content) — must be
// bit-identical at 1, 2, and 4 workers, on clean specs and on
// deliberately violating configurations. See DESIGN.md "Parallel
// checking" for why this holds.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/domain.h"
#include "analysis/footprint.h"
#include "analysis/independence.h"
#include "specs/array_ot_spec.h"
#include "specs/locking_spec.h"
#include "specs/raft_mongo_spec.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"
#include "tlax/spec.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

// Checks `spec` at several worker counts and asserts every promised
// field matches the single-worker baseline exactly.
void ExpectWorkerInvariant(const Spec& spec, CheckerOptions options = {}) {
  options.num_workers = 1;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  EXPECT_EQ(base.workers_used, 1);

  for (int workers : {2, 4}) {
    SCOPED_TRACE(testing::Message() << spec.name() << " with " << workers
                                    << " workers");
    options.num_workers = workers;
    CheckResult result = ModelChecker(options).Check(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.workers_used, workers);

    EXPECT_EQ(result.distinct_states, base.distinct_states);
    EXPECT_EQ(result.generated_states, base.generated_states);
    EXPECT_EQ(result.diameter, base.diameter);
    EXPECT_EQ(result.frontier_peak, base.frontier_peak);
    EXPECT_EQ(result.por_slept_actions, base.por_slept_actions);
    EXPECT_EQ(result.fingerprint_collisions, base.fingerprint_collisions);

    ASSERT_EQ(result.violation.has_value(), base.violation.has_value());
    if (base.violation.has_value()) {
      EXPECT_EQ(result.violation->kind, base.violation->kind);
      ASSERT_EQ(result.violation->trace.size(), base.violation->trace.size())
          << "counterexamples must stay minimal and identical";
      for (size_t i = 0; i < base.violation->trace.size(); ++i) {
        EXPECT_EQ(result.violation->trace[i].action,
                  base.violation->trace[i].action)
            << "trace step " << i;
        EXPECT_EQ(result.violation->trace[i].state,
                  base.violation->trace[i].state)
            << "trace step " << i;
      }
    }
  }
}

TEST(DeterminismTest, RaftMongoDetailed) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  ExpectWorkerInvariant(specs::RaftMongoSpec(config));
}

TEST(DeterminismTest, RaftMongoAbstractWithSymmetry) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kAbstract;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  config.use_symmetry = true;
  ExpectWorkerInvariant(specs::RaftMongoSpec(config));
}

TEST(DeterminismTest, LockingSpec) {
  specs::LockingConfig config;
  config.num_contexts = 2;
  CheckerOptions options;
  options.check_deadlock = true;
  ExpectWorkerInvariant(specs::LockingSpec(config), options);
}

TEST(DeterminismTest, ArrayOt) {
  specs::ArrayOtConfig config;
  config.num_clients = 2;
  config.initial_array_len = 2;
  ExpectWorkerInvariant(specs::ArrayOtSpec(config));
}

TEST(DeterminismTest, ArrayOtWithInjectedTranscriptionError) {
  // The §5.1.1 deliberate transcription error: the checker must find a
  // violation, and the counterexample must not depend on worker count.
  specs::ArrayOtConfig config;
  config.num_clients = 2;
  config.initial_array_len = 2;
  config.inject_transcription_error = true;
  specs::ArrayOtSpec spec(config);
  CheckerOptions options;
  options.num_workers = 1;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_TRUE(base.violation.has_value())
      << "the injected transcription error must be caught";
  ExpectWorkerInvariant(spec);
}

TEST(DeterminismTest, CounterViolation) {
  // Mid-space invariant violation: many same-level candidates compete, so
  // this exercises the minimal-key candidate selection directly.
  ExpectWorkerInvariant(specs::CounterSpec(/*limit=*/30, /*violate_at=*/17));
}

TEST(DeterminismTest, DieHardMinimalCounterexample) {
  specs::DieHardSpec spec;
  ExpectWorkerInvariant(spec);
  // The classic puzzle answer: 7 states, at every worker count.
  for (int workers : {1, 2, 4}) {
    CheckerOptions options;
    options.num_workers = workers;
    CheckResult result = ModelChecker(options).Check(spec);
    ASSERT_TRUE(result.violation.has_value());
    EXPECT_EQ(result.violation->trace.size(), 7u);
  }
}

// Checker options carrying a sleep-set POR matrix: the footprint-only
// matrix, or the value-sensitive refined one from the abstract-domain
// pass. Two-phase settle at the level barrier makes every CheckResult
// field worker-count-invariant even under POR, so these run through the
// same ExpectWorkerInvariant bar as the unreduced checks.
CheckerOptions PorOptions(const Spec& spec, bool refined) {
  analysis::SpecFootprints footprints = analysis::InferFootprints(spec);
  CheckerOptions options;
  if (refined) {
    analysis::SpecDomains domains = analysis::InferDomains(spec);
    options.independence = std::make_shared<ActionIndependence>(
        analysis::RefineIndependence(spec, footprints, domains).matrix);
  } else {
    options.independence = std::make_shared<ActionIndependence>(
        analysis::ComputeIndependence(spec, footprints));
  }
  return options;
}

TEST(PorDeterminismTest, RaftMongoAbstractFootprintOnly) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kAbstract;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  ExpectWorkerInvariant(spec, PorOptions(spec, /*refined=*/false));
}

TEST(PorDeterminismTest, RaftMongoAbstractRefined) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kAbstract;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  ExpectWorkerInvariant(spec, PorOptions(spec, /*refined=*/true));
}

TEST(PorDeterminismTest, RaftMongoDetailedRefined) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  ExpectWorkerInvariant(spec, PorOptions(spec, /*refined=*/true));
}

TEST(PorDeterminismTest, CounterViolationUnderPor) {
  // A violating run with a fully commuting matrix: the sleep sets prune
  // aggressively, yet the counterexample must stay identical at every
  // worker count.
  specs::CounterSpec spec(/*limit=*/30, /*violate_at=*/17);
  ExpectWorkerInvariant(spec, PorOptions(spec, /*refined=*/false));
}

TEST(PorDeterminismTest, RefinedSleepsAtLeastAsMuchAsFootprintOnly) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  CheckResult base =
      ModelChecker(PorOptions(spec, /*refined=*/false)).Check(spec);
  CheckResult refined =
      ModelChecker(PorOptions(spec, /*refined=*/true)).Check(spec);
  ASSERT_TRUE(base.status.ok());
  ASSERT_TRUE(refined.status.ok());
  EXPECT_EQ(refined.distinct_states, base.distinct_states);
  EXPECT_GT(refined.por_slept_actions, base.por_slept_actions);
}

TEST(DeterminismTest, ResourceExhaustionIsWorkerInvariant) {
  specs::CounterSpec spec(/*limit=*/100);
  for (int workers : {1, 2, 4}) {
    CheckerOptions options;
    options.num_workers = workers;
    options.max_distinct_states = 50;
    CheckResult result = ModelChecker(options).Check(spec);
    EXPECT_EQ(result.status.code(), common::StatusCode::kResourceExhausted)
        << "workers=" << workers;
  }
}

TEST(DeterminismTest, MaxDepthIsWorkerInvariant) {
  specs::CounterSpec spec(/*limit=*/20);
  CheckerOptions options;
  options.max_depth = 5;
  ExpectWorkerInvariant(spec, options);
}

TEST(DeterminismTest, ZeroMeansHardwareConcurrency) {
  CheckerOptions options;
  options.num_workers = 0;
  CheckResult result = ModelChecker(options).Check(specs::CounterSpec(4));
  EXPECT_GE(result.workers_used, 1);
}

TEST(DeterminismTest, RecordGraphRunsAtFullParallelism) {
  // The former record_graph → 1 worker clamp is gone: graph-recording
  // runs honor num_workers (byte-identity of the recorded graph is
  // covered by tlax_graph_determinism_test).
  CheckerOptions options;
  options.num_workers = 4;
  options.record_graph = true;
  CheckResult result = ModelChecker(options).Check(specs::CounterSpec(2));
  EXPECT_EQ(result.workers_used, 4);
  ASSERT_NE(result.graph, nullptr);
  EXPECT_EQ(result.distinct_states, 9u);
  EXPECT_EQ(result.graph->num_states(), 9u);
}

// Interning must be semantically invisible: repeated checks of the same
// spec — first against a cold(er) intern table, then against one warmed by
// the previous run — must produce bit-identical CheckResults, including
// violation traces. A hash-consing bug (wrong dedup, cross-talk between
// structurally distinct values) would surface here as a drifting count.
void ExpectInterningInvariant(const Spec& spec, CheckerOptions options = {},
                              bool expect_violation = false) {
  options.num_workers = 1;
  CheckResult cold = ModelChecker(options).Check(spec);
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  CheckResult warm = ModelChecker(options).Check(spec);
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();

  EXPECT_EQ(warm.distinct_states, cold.distinct_states);
  EXPECT_EQ(warm.generated_states, cold.generated_states);
  EXPECT_EQ(warm.diameter, cold.diameter);
  EXPECT_EQ(warm.frontier_peak, cold.frontier_peak);
  EXPECT_EQ(warm.por_slept_actions, cold.por_slept_actions);
  EXPECT_EQ(warm.fingerprint_collisions, cold.fingerprint_collisions);
  ASSERT_EQ(warm.violation.has_value(), cold.violation.has_value());
  if (expect_violation) {
    ASSERT_TRUE(cold.violation.has_value());
  }
  if (cold.violation.has_value()) {
    EXPECT_EQ(warm.violation->kind, cold.violation->kind);
    ASSERT_EQ(warm.violation->trace.size(), cold.violation->trace.size());
    for (size_t i = 0; i < cold.violation->trace.size(); ++i) {
      EXPECT_EQ(warm.violation->trace[i].action,
                cold.violation->trace[i].action);
      EXPECT_EQ(warm.violation->trace[i].state,
                cold.violation->trace[i].state);
    }
  }
}

TEST(InterningDeterminismTest, RaftMongoDetailed) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  ExpectInterningInvariant(specs::RaftMongoSpec(config));
}

TEST(InterningDeterminismTest, LockingSpec) {
  specs::LockingConfig config;
  config.num_contexts = 2;
  CheckerOptions options;
  options.check_deadlock = true;
  ExpectInterningInvariant(specs::LockingSpec(config), options);
}

TEST(InterningDeterminismTest, ArrayOtWithInjectedTranscriptionError) {
  specs::ArrayOtConfig config;
  config.num_clients = 2;
  config.initial_array_len = 2;
  config.inject_transcription_error = true;
  ExpectInterningInvariant(specs::ArrayOtSpec(config), {},
                           /*expect_violation=*/true);
}

TEST(InterningDeterminismTest, InternLiveRepHighWaterMark) {
  // Regression guard against intern-table leaks: a bounded RaftMongo
  // check must stay far below this live-rep high-water mark (measured
  // ~1.3k reps for the whole bench suite — the value universe is tiny
  // compared to the state space), and a REPEATED identical check must
  // allocate zero new reps, because every value it builds is already
  // canonical. Runs under the ASan CI job too.
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);

  const Value::InternStats before = Value::GetInternStats();
  CheckResult first = ModelChecker().Check(spec);
  ASSERT_TRUE(first.status.ok());
  const Value::InternStats mid = Value::GetInternStats();
  EXPECT_LT(mid.live - before.live, 50'000u)
      << "intern table grew far beyond the recorded high-water mark — "
         "likely a leak of per-state unique reps";

  CheckResult second = ModelChecker().Check(spec);
  ASSERT_TRUE(second.status.ok());
  const Value::InternStats after = Value::GetInternStats();
  EXPECT_EQ(after.misses, mid.misses)
      << "a repeated identical check interned new reps — values are not "
         "being deduplicated";
  EXPECT_EQ(second.distinct_states, first.distinct_states);
}

TEST(DeterminismTest, FpAuditReportsZeroCollisionsAcrossWorkers) {
  specs::RaftMongoConfig config;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  for (int workers : {1, 4}) {
    CheckerOptions options;
    options.num_workers = workers;
    options.fp_audit = true;
    CheckResult result = ModelChecker(options).Check(spec);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.fingerprint_collisions, 0u) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace xmodel::tlax
