#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/export.h"

namespace xmodel::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperEdges) {
  Histogram h({1.0, 10.0, 100.0});
  // Exactly on an edge lands in that edge's bucket (Prometheus `le`).
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (le = 1, inclusive)
  h.Observe(1.0001); // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(99.9);   // bucket 2
  h.Observe(100.0);  // bucket 2
  h.Observe(100.5);  // +Inf bucket
  std::vector<uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite edges + 1 implicit +Inf.
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 100.5);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (uint64_t b : h.bucket_counts()) EXPECT_EQ(b, 0u);
}

TEST(MetricsRegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("test.events.seen");
  Counter& b = registry.GetCounter("test.events.seen");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("z.last").Increment(1);
  registry.GetGauge("a.first").Set(7);
  registry.GetHistogram("m.middle", {1.0}).Observe(0.5);

  RegistrySnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.first");
  EXPECT_EQ(snap.metrics[1].name, "m.middle");
  EXPECT_EQ(snap.metrics[2].name, "z.last");

  const MetricSnapshot* gauge = snap.Find("a.first");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(gauge->value, 7.0);
  EXPECT_EQ(snap.Find("missing"), nullptr);
  EXPECT_TRUE(snap.HasFamily("m."));
  EXPECT_FALSE(snap.HasFamily("q."));
}

TEST(MetricsRegistryTest, ResetKeepsRegistrationsAndHandles) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.runs");
  Histogram& histogram = registry.GetHistogram("test.latency", {1.0, 2.0});
  counter.Increment(5);
  histogram.Observe(1.5);

  registry.Reset();
  EXPECT_EQ(registry.size(), 2u);  // Registrations survive.
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);

  // Cached handles keep working after Reset — the snapshot/reset cycle the
  // benches rely on.
  counter.Increment();
  EXPECT_EQ(registry.Snapshot().Find("test.runs")->value, 1.0);
}

TEST(MetricsRegistryTest, HistogramFirstBoundsWin) {
  MetricsRegistry registry;
  Histogram& first = registry.GetHistogram("h", {1.0, 2.0});
  Histogram& second = registry.GetHistogram("h", {9.0});
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.upper_bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ExportTest, PrometheusTextHasCumulativeBuckets) {
  MetricsRegistry registry;
  registry.GetCounter("checker.states.generated").Increment(10);
  Histogram& h = registry.GetHistogram("mbtc.phase.check.ms", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(50.0);

  std::string text = ToPrometheusText(registry.Snapshot());
  // Dots become underscores; counters print integrally.
  EXPECT_NE(text.find("# TYPE checker_states_generated counter"),
            std::string::npos);
  EXPECT_NE(text.find("checker_states_generated 10\n"), std::string::npos);
  // Buckets are cumulative with le labels, ending at +Inf == count.
  EXPECT_NE(text.find("mbtc_phase_check_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("mbtc_phase_check_ms_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mbtc_phase_check_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("mbtc_phase_check_ms_count 3"), std::string::npos);
}

TEST(ExportTest, JsonSnapshotRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("repl.writes.applied").Increment(4);
  registry.GetGauge("repl.sim.wall_ratio").Set(123.5);
  registry.GetHistogram("mbtc.phase.parse.ms", {1.0}).Observe(0.25);

  common::Json doc = ToJson(registry.Snapshot());
  auto parsed = common::Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const common::Json* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string_value(), "xmodel.metrics.v1");

  const common::Json* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const common::Json* counter = metrics->Find("repl.writes.applied");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->Find("kind")->string_value(), "counter");
  EXPECT_EQ(counter->Find("value")->int_value(), 4);

  const common::Json* histogram = metrics->Find("mbtc.phase.parse.ms");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->Find("count")->int_value(), 1);
  ASSERT_EQ(histogram->Find("buckets")->array().size(), 2u);
  EXPECT_EQ(histogram->Find("buckets")->array()[0].int_value(), 1);
}

TEST(ExportTest, DefaultLatencyBucketsAreAscending) {
  std::vector<double> buckets = DefaultLatencyBucketsMs();
  ASSERT_GE(buckets.size(), 2u);
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1], buckets[i]);
  }
}

}  // namespace
}  // namespace xmodel::obs
