#include "obs/progress.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"

namespace xmodel {
namespace {

TEST(ProgressFormatTest, GoldenLines) {
  obs::CheckerProgress p;
  p.generated_states = 123456;
  p.distinct_states = 9999;
  p.frontier_size = 321;
  p.depth = 12;
  p.states_per_sec = 45678;
  p.fingerprint_load = 0.43;
  EXPECT_EQ(obs::TextProgressReporter::FormatLine(p),
            "progress: 123456 states generated (45678 s/sec), 9999 distinct, "
            "321 on queue, depth 12, fp load 0.43");

  p.por_slept = 17;
  EXPECT_EQ(obs::TextProgressReporter::FormatLine(p),
            "progress: 123456 states generated (45678 s/sec), 9999 distinct, "
            "321 on queue, depth 12, fp load 0.43, 17 slept");

  p.por_slept = 0;
  p.final_report = true;
  p.seconds = 2.5;
  p.frontier_size = 0;
  EXPECT_EQ(obs::TextProgressReporter::FormatLine(p),
            "done: 123456 states generated (45678 s/sec), 9999 distinct, "
            "0 on queue, depth 12, fp load 0.43 (2.50 s total)");
}

TEST(ProgressReporterTest, StringSinkAppendsLines) {
  std::string sink;
  obs::TextProgressReporter reporter(&sink);
  obs::CheckerProgress p;
  p.generated_states = 10;
  reporter.Report(p);
  reporter.Report(p);
  EXPECT_EQ(sink,
            "progress: 10 states generated (0 s/sec), 0 distinct, 0 on "
            "queue, depth 0, fp load 0.00\n"
            "progress: 10 states generated (0 s/sec), 0 distinct, 0 on "
            "queue, depth 0, fp load 0.00\n");
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

// The end-to-end golden: a toy-spec check with a fake clock produces
// deterministic progress output — interval lines while the frontier
// drains, then one final "done:" line matching the check result exactly.
TEST(ProgressReporterTest, CheckerEmitsDeterministicProgress) {
  specs::CounterSpec spec(60);  // >1024 expansions, so polls fire.
  common::FakeMonotonicClock clock;
  clock.set_auto_advance_ns(1'000'000);  // 1 ms per clock read.

  std::string sink;
  obs::TextProgressReporter reporter(&sink);
  tlax::CheckerOptions options;
  options.progress_reporter = &reporter;
  options.progress_interval_ms = 0;  // Report at every poll.
  options.clock = &clock;
  options.publish_metrics = false;
  tlax::CheckResult result = tlax::ModelChecker(options).Check(spec);
  ASSERT_TRUE(result.status.ok());

  std::vector<std::string> lines = Lines(sink);
  ASSERT_GE(lines.size(), 2u);  // At least one interval line + done.
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind("progress: ", 0), 0u) << lines[i];
  }

  // The final line is exactly the check result, formatted.
  obs::CheckerProgress final_progress;
  final_progress.generated_states = result.generated_states;
  final_progress.distinct_states = result.distinct_states;
  final_progress.frontier_size = 0;
  final_progress.depth = result.diameter;
  final_progress.seconds = result.seconds;
  final_progress.states_per_sec =
      static_cast<double>(result.generated_states) / result.seconds;
  final_progress.fingerprint_load = result.fingerprint_load;
  final_progress.por_slept = result.por_slept_actions;
  final_progress.final_report = true;
  EXPECT_EQ(lines.back(),
            obs::TextProgressReporter::FormatLine(final_progress));

  // The fake clock makes the run fully deterministic: a second run
  // produces byte-identical output.
  common::FakeMonotonicClock clock2;
  clock2.set_auto_advance_ns(1'000'000);
  std::string sink2;
  obs::TextProgressReporter reporter2(&sink2);
  options.progress_reporter = &reporter2;
  options.clock = &clock2;
  tlax::ModelChecker(options).Check(spec);
  EXPECT_EQ(sink, sink2);
}

TEST(ProgressReporterTest, CheckerPublishesRegistryMetrics) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  specs::CounterSpec spec(10);
  tlax::CheckResult result = tlax::ModelChecker().Check(spec);
  ASSERT_TRUE(result.status.ok());

  obs::RegistrySnapshot snap = registry.Snapshot();
  ASSERT_TRUE(snap.HasFamily("checker."));
  EXPECT_EQ(snap.Find("checker.runs.completed")->value, 1.0);
  EXPECT_EQ(snap.Find("checker.states.generated")->value,
            static_cast<double>(result.generated_states));
  EXPECT_EQ(snap.Find("checker.states.distinct")->value,
            static_cast<double>(result.distinct_states));
  registry.Reset();
}

TEST(ProgressReporterTest, PublishMetricsCanBeDisabled) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  specs::CounterSpec spec(5);
  tlax::CheckerOptions options;
  options.publish_metrics = false;
  tlax::ModelChecker(options).Check(spec);

  const obs::MetricSnapshot* runs =
      registry.Snapshot().Find("checker.runs.completed");
  // Either never registered, or untouched by this run.
  if (runs != nullptr) {
    EXPECT_EQ(runs->value, 0.0);
  }
  registry.Reset();
}

}  // namespace
}  // namespace xmodel
