#include <gtest/gtest.h>

#include "repl/replica_set.h"

namespace xmodel::repl {
namespace {

ReplicaSet MakeSet(int n = 3) {
  ReplicaSetConfig config;
  config.num_nodes = n;
  return ReplicaSet(config);
}

TEST(ReplicaSetTest, ElectionMakesLeader) {
  ReplicaSet rs = MakeSet();
  ASSERT_TRUE(rs.TryElect(0).ok());
  EXPECT_EQ(rs.node(0).role(), Role::kLeader);
  EXPECT_EQ(rs.node(0).term(), 1);
  EXPECT_EQ(rs.Leaders(), std::vector<int>{0});
}

TEST(ReplicaSetTest, ElectionFailsWithoutMajority) {
  ReplicaSet rs = MakeSet();
  rs.network().Isolate(0);
  EXPECT_FALSE(rs.TryElect(0).ok());
  EXPECT_EQ(rs.node(0).role(), Role::kFollower);
}

TEST(ReplicaSetTest, WriteReplicationAndCommit) {
  ReplicaSet rs = MakeSet();
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "w1").ok());
  ASSERT_TRUE(rs.ClientWrite(0, "w2").ok());
  EXPECT_EQ(rs.node(0).oplog().size(), 2u);
  EXPECT_TRUE(rs.node(0).commit_point().IsNull());

  rs.CatchUpAll();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rs.node(i).oplog().size(), 2u) << "node " << i;
    EXPECT_EQ(rs.node(i).commit_point(), (OpTime{1, 2})) << "node " << i;
  }
  EXPECT_EQ(rs.declared_committed().size(), 2u);
  EXPECT_TRUE(rs.CommittedWritesDurable());
}

TEST(ReplicaSetTest, FollowerCannotAcceptWrites) {
  ReplicaSet rs = MakeSet();
  ASSERT_TRUE(rs.TryElect(0).ok());
  EXPECT_FALSE(rs.ClientWrite(1, "w").ok());
}

TEST(ReplicaSetTest, TwoLeadersAfterPartition) {
  ReplicaSet rs = MakeSet(5);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "w1").ok());
  rs.CatchUpAll();

  // Partition the old leader with one follower; elect in the majority side.
  rs.network().Partition({{0, 1}, {2, 3, 4}});
  ASSERT_TRUE(rs.TryElect(2).ok());
  // Both believe they lead: the "Two leaders" discrepancy.
  EXPECT_EQ(rs.Leaders().size(), 2u);
  EXPECT_EQ(rs.NewestLeader(), 2);
  EXPECT_GT(rs.node(2).term(), rs.node(0).term());

  // Healing the partition and gossiping dethrones the stale leader.
  rs.network().Heal();
  rs.GossipAll();
  EXPECT_EQ(rs.Leaders(), std::vector<int>{2});
  EXPECT_EQ(rs.node(0).role(), Role::kFollower);
  EXPECT_EQ(rs.node(0).term(), rs.node(2).term());
}

TEST(ReplicaSetTest, DivergentWritesRollBack) {
  ReplicaSet rs = MakeSet(5);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "committed").ok());
  rs.CatchUpAll();

  // Old leader keeps accepting writes in a minority partition.
  rs.network().Partition({{0}, {1, 2, 3, 4}});
  ASSERT_TRUE(rs.ClientWrite(0, "doomed1").ok());
  ASSERT_TRUE(rs.ClientWrite(0, "doomed2").ok());

  // Majority side moves on.
  ASSERT_TRUE(rs.TryElect(1).ok());
  ASSERT_TRUE(rs.ClientWrite(1, "survives").ok());
  rs.CatchUpAll();

  rs.network().Heal();
  rs.GossipAll();  // Node 0 steps down on learning the newer term.
  rs.CatchUpAll();

  // Node 0 rolled back its divergent suffix and matches the new history.
  EXPECT_EQ(rs.node(0).oplog().Terms(), rs.node(1).oplog().Terms());
  EXPECT_EQ(rs.node(0).oplog().size(), 2u);
  EXPECT_TRUE(rs.CommittedWritesDurable());
}

TEST(ReplicaSetTest, CommitPointGossipReachesFollowers) {
  ReplicaSet rs = MakeSet();
  ASSERT_TRUE(rs.TryElect(2).ok());
  ASSERT_TRUE(rs.ClientWrite(2, "w").ok());
  // One round of replication gets the data out; the next gossip spreads the
  // commit point.
  for (int i = 0; i < 3; ++i) rs.ReplicateOnce(i);
  rs.GossipAll();
  rs.GossipAll();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rs.node(i).commit_point(), (OpTime{1, 1})) << "node " << i;
  }
}

TEST(ReplicaSetTest, ArbitersVoteButBearNoData) {
  ReplicaSetConfig config;
  config.num_nodes = 3;
  config.arbiters = {2};
  ReplicaSet rs(config);

  // The arbiter's vote lets node 0 win even when node 1 is unreachable.
  rs.network().Partition({{0, 2}, {1}});
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "w").ok());
  rs.CatchUpAll();
  EXPECT_TRUE(rs.node(2).oplog().empty());

  // But the arbiter cannot acknowledge writes: no majority, no commit.
  EXPECT_TRUE(rs.node(0).commit_point().IsNull());

  // With node 1 back, the write commits.
  rs.network().Heal();
  rs.CatchUpAll();
  EXPECT_EQ(rs.node(0).commit_point(), (OpTime{1, 1}));

  // Arbiters cannot be elected.
  EXPECT_FALSE(rs.TryElect(2).ok());
}

TEST(ReplicaSetTest, InitialSyncQuorumBugRollsBackCommittedWrite) {
  // The exact §4.2.2 scenario: an initial-syncing node is counted toward
  // the majority, the leader advances the commit point over an entry that
  // is durable nowhere else, and the entry is later rolled back after the
  // leader fails and the syncer's restarted sync wipes its copy.
  ReplicaSetConfig config;
  config.num_nodes = 3;
  config.count_initial_sync_in_quorum = true;  // The bug.
  ReplicaSet rs(config);

  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "base").ok());
  rs.CatchUpAll();
  ASSERT_TRUE(rs.CommittedWritesDurable());

  // Node 2 re-syncs; node 1 is unreachable from the leader.
  rs.network().Partition({{0, 2}});
  ASSERT_TRUE(rs.StartInitialSync(2).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "not-durable").ok());
  rs.ReplicateFrom(2, 0);
  // With the bug, the syncing member's acknowledgment commits the write.
  EXPECT_EQ(rs.node(0).commit_point(), (OpTime{1, 2}));

  // The leader fails; the half-finished sync restarts against the healthy
  // members, wiping the only other copy; a leader without the entry is
  // elected; the returning old leader rolls the "committed" write back.
  rs.CrashNode(0, /*unclean=*/false);
  rs.network().Heal();
  ASSERT_TRUE(rs.StartInitialSync(2).ok());
  ASSERT_TRUE(rs.FinishInitialSync(2).ok());
  ASSERT_TRUE(rs.TryElect(1).ok());
  ASSERT_TRUE(rs.ClientWrite(1, "after-loss").ok());
  rs.RestartNode(0);
  rs.GossipAll();
  rs.CatchUpAll();

  EXPECT_GT(rs.node(0).rollback_count(), 0);
  EXPECT_FALSE(rs.CommittedWritesDurable());
  ASSERT_EQ(rs.CommittedButRolledBack().size(), 1u);
  EXPECT_EQ(rs.CommittedButRolledBack()[0], (OpTime{1, 2}));
}

TEST(ReplicaSetTest, FixedQuorumRuleKeepsCommitsDurable) {
  // Same scenario with the fix: initial-syncing members do not count.
  ReplicaSetConfig config;
  config.num_nodes = 3;
  config.count_initial_sync_in_quorum = false;  // The fix.
  ReplicaSet rs(config);

  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "base").ok());
  rs.CatchUpAll();

  rs.network().Partition({{0, 2}, {1}});
  ASSERT_TRUE(rs.StartInitialSync(2).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "pending").ok());
  rs.ReplicateFrom(2, 0);
  // No commit: the initial-syncing member's position does not count.
  EXPECT_EQ(rs.node(0).commit_point(), (OpTime{1, 1}));
  EXPECT_TRUE(rs.CommittedWritesDurable());
}

TEST(ReplicaSetTest, InitialSyncCopiesOnlyRecentEntriesObservably) {
  ReplicaSetConfig config;
  config.num_nodes = 3;
  config.initial_sync_oplog_window = 2;
  ReplicaSet rs(config);
  ASSERT_TRUE(rs.TryElect(0).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(rs.ClientWrite(0, "w").ok());
  }
  rs.CatchUpAll();
  ASSERT_TRUE(rs.StartInitialSync(2).ok());
  // The data image carries all 5 entries (protocol-visible)...
  EXPECT_EQ(rs.node(2).oplog().size(), 5u);
  // ...but only the trailing window exists as real oplog history.
  EXPECT_EQ(rs.node(2).initial_sync_image_prefix(), 3);
  ASSERT_TRUE(rs.FinishInitialSync(2).ok());
  EXPECT_EQ(rs.node(2).sync_state(), SyncState::kSteady);
}

TEST(ReplicaSetTest, UncleanRestartLosesLastEntry) {
  ReplicaSet rs = MakeSet();
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "a").ok());
  ASSERT_TRUE(rs.ClientWrite(0, "b").ok());
  rs.CrashNode(0, /*unclean=*/true);
  EXPECT_FALSE(rs.node(0).alive());
  rs.RestartNode(0);
  EXPECT_TRUE(rs.node(0).alive());
  EXPECT_EQ(rs.node(0).role(), Role::kFollower);
  EXPECT_EQ(rs.node(0).oplog().size(), 1u);
  // Term is durable.
  EXPECT_EQ(rs.node(0).term(), 1);
}

TEST(ReplicaSetTest, CleanRestartKeepsLog) {
  ReplicaSet rs = MakeSet();
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "a").ok());
  rs.CrashNode(0, /*unclean=*/false);
  rs.RestartNode(0);
  EXPECT_EQ(rs.node(0).oplog().size(), 1u);
}

TEST(ReplicaSetTest, StaleLeaderCannotCommitNewTermWrites) {
  // Raft safety: a leader only advances the commit point onto entries of
  // its own term.
  ReplicaSet rs = MakeSet(5);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "t1write").ok());
  // New election before replication: term 2 leader inherits nothing.
  ASSERT_TRUE(rs.TryElect(1).ok());
  EXPECT_EQ(rs.node(1).term(), 2);
  rs.GossipAll();
  // Node 1's log is empty; node 0 is ahead: node 0 will not pull from an
  // older log and node 1 cannot commit node 0's term-1 write.
  EXPECT_TRUE(rs.node(1).commit_point().IsNull());
}

TEST(ReplicaSetTest, ElectionRequiresUpToDateLog) {
  ReplicaSet rs = MakeSet(3);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "w").ok());
  rs.CatchUpAll();
  // Node 2 falls behind: a new write does not reach it.
  rs.network().Partition({{0, 1}, {2}});
  ASSERT_TRUE(rs.ClientWrite(0, "w2").ok());
  rs.ReplicateFrom(1, 0);
  rs.network().Heal();
  // Node 2's log is older than both voters' logs; they refuse to vote for
  // it, so it cannot win (only its own vote).
  EXPECT_FALSE(rs.TryElect(2).ok());
  // Node 1 (up to date) can win.
  EXPECT_TRUE(rs.TryElect(1).ok());
}

}  // namespace
}  // namespace xmodel::repl
