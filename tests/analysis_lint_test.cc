// Tests for the spec-lint analysis: the broken fixture spec must produce
// every seeded finding, and the real registered specs must lint clean
// (that is also the CI gate `xmodel_lint` enforces).

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/footprint.h"
#include "analysis/spec_lint.h"
#include "analysis/spec_registry.h"

namespace xmodel::analysis {
namespace {

bool HasFinding(const std::vector<Diagnostic>& diags, const std::string& code,
                const std::string& location) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.code == code && d.location == location;
  });
}

TEST(SpecLintTest, BrokenFixtureProducesSeededFindings) {
  std::unique_ptr<tlax::Spec> spec = MakeBrokenFixtureSpec();
  SpecFootprints footprints = InferFootprints(*spec);
  ASSERT_TRUE(footprints.exhaustive);
  std::vector<Diagnostic> diags = LintSpec(*spec, footprints);

  // "GhostIsZero" reads only the never-written variable "ghost".
  EXPECT_TRUE(HasFinding(diags, "vacuous-invariant", "GhostIsZero"));
  // "AlwaysTrue" reads no variable at all.
  EXPECT_TRUE(HasFinding(diags, "vacuous-invariant", "AlwaysTrue"));
  // "DeadAction" guards on x > 100, unreachable under the fixture bounds.
  EXPECT_TRUE(HasFinding(diags, "never-enabled-action", "DeadAction"));
  // Two actions are both named "Step".
  EXPECT_TRUE(HasFinding(diags, "duplicate-action-name", "Step"));
  // "LyingFootprint" declares writes {} but mutates x.
  EXPECT_TRUE(HasFinding(diags, "footprint-mismatch", "LyingFootprint"));
  // "ghost" is read by an invariant but no action ever writes it.
  EXPECT_TRUE(HasFinding(diags, "never-written-variable", "ghost"));
  // "WriteScratch" declares the typo'd footprint variable "tyop".
  EXPECT_TRUE(HasFinding(diags, "unresolved-footprint-var", "WriteScratch"));
  // "scratch" is written by WriteScratch but nothing ever reads it.
  EXPECT_TRUE(HasFinding(diags, "written-never-read", "scratch"));

  // The genuine pieces of the fixture must NOT be flagged.
  EXPECT_FALSE(HasFinding(diags, "vacuous-invariant", "XInRange"));
  EXPECT_FALSE(HasFinding(diags, "never-enabled-action", "Step"));

  size_t errors = std::count_if(
      diags.begin(), diags.end(),
      [](const Diagnostic& d) { return d.severity == Severity::kError; });
  EXPECT_GE(errors, 4u) << "fixture must make xmodel_lint exit nonzero";
}

TEST(SpecLintTest, NeverEnabledIsWarningWhenSampled) {
  std::unique_ptr<tlax::Spec> spec = MakeBrokenFixtureSpec();
  FootprintOptions options;
  options.max_samples = 1;  // Force truncation: verdicts become sampled.
  SpecFootprints footprints = InferFootprints(*spec, options);
  ASSERT_FALSE(footprints.exhaustive);
  std::vector<Diagnostic> diags = LintSpec(*spec, footprints);
  for (const Diagnostic& d : diags) {
    if (d.code == "never-enabled-action") {
      EXPECT_EQ(d.severity, Severity::kWarning)
          << "non-exhaustive sampling cannot prove an action dead";
    }
  }
}

TEST(SpecLintTest, UnresolvedFootprintVarSeverityIsLocked) {
  // The severity contract consumers (the CI lint gate, editor plugins)
  // rely on: a declared footprint naming a nonexistent variable is an
  // ERROR — silently ignoring the name would let typos rot the very
  // declarations the independence analysis trusts. Locked both in the
  // enum and in the JSON severity string.
  std::unique_ptr<tlax::Spec> spec = MakeBrokenFixtureSpec();
  SpecFootprints footprints = InferFootprints(*spec);
  std::vector<Diagnostic> diags = LintSpec(*spec, footprints);
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.code != "unresolved-footprint-var") continue;
    found = true;
    EXPECT_EQ(d.severity, Severity::kError) << d.ToText();
    EXPECT_EQ(d.ToJson().Dump().find("\"severity\":\"error\"") !=
                  std::string::npos,
              true)
        << d.ToJson().Dump();
    EXPECT_NE(d.message.find("tyop"), std::string::npos)
        << "the message must name the offending variable";
  }
  EXPECT_TRUE(found);
}

TEST(SpecLintTest, WrittenNeverReadIsWarningNotError) {
  // Dead weight, not a soundness bug: written-never-read must not flip
  // the lint exit status on its own.
  std::unique_ptr<tlax::Spec> spec = MakeBrokenFixtureSpec();
  SpecFootprints footprints = InferFootprints(*spec);
  for (const Diagnostic& d : LintSpec(*spec, footprints)) {
    if (d.code == "written-never-read") {
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_EQ(d.location, "scratch");
    }
  }
}

TEST(SpecLintTest, RegisteredSpecsLintClean) {
  for (const RegisteredSpec& entry : RegisteredSpecs()) {
    std::unique_ptr<tlax::Spec> spec = entry.make();
    SpecFootprints footprints = InferFootprints(*spec);
    std::vector<Diagnostic> diags = LintSpec(*spec, footprints);
    for (const Diagnostic& d : diags) {
      EXPECT_LT(d.severity, Severity::kError)
          << entry.name << ": " << d.ToText();
    }
  }
}

}  // namespace
}  // namespace xmodel::analysis
