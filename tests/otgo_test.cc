#include <gtest/gtest.h>

#include "otgo/go_merge.h"

namespace xmodel::otgo {
namespace {

using ot::Array;
using ot::Operation;
using ot::OpList;

TEST(GoMergeTest, SwapIsNotSupported) {
  // The Go port dropped ArraySwap after the model checker found the
  // non-termination (§5.1.3): any swap is refused, never mis-merged.
  GoMergeEngine engine;
  auto r = engine.TransformLists({Operation::Swap(0, 1).At(0, 1)},
                                 {Operation::Set(0, 9).At(0, 2)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kNotSupported);

  auto single = GoMergeEngine::TransformOne(Operation::Set(0, 9).At(0, 1),
                                            Operation::Swap(0, 1).At(0, 2));
  EXPECT_FALSE(single.ok());
}

TEST(GoMergeTest, SingleDirectionTransforms) {
  // T(Set(2,4), Erase(1)) = Set(1,4)  — the Figure 7 rule, one direction.
  auto r = GoMergeEngine::TransformOne(Operation::Set(2, 4).At(0, 1),
                                       Operation::Erase(1).At(0, 2));
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_TRUE((*r)[0].SameEffect(Operation::Set(1, 4)));

  // T(Set(1,4), Erase(1)) = discard.
  auto discarded = GoMergeEngine::TransformOne(Operation::Set(1, 4).At(0, 1),
                                               Operation::Erase(1).At(0, 2));
  ASSERT_TRUE(discarded.ok());
  EXPECT_TRUE(discarded->empty());
}

TEST(GoMergeTest, EmptyListsPassThrough) {
  GoMergeEngine engine;
  OpList ops = {Operation::Insert(0, 1).At(0, 1)};
  auto left_empty = engine.TransformLists({}, ops);
  ASSERT_TRUE(left_empty.ok());
  EXPECT_TRUE(left_empty->left.empty());
  EXPECT_EQ(left_empty->right, ops);
  auto right_empty = engine.TransformLists(ops, {});
  ASSERT_TRUE(right_empty.ok());
  EXPECT_EQ(right_empty->left, ops);
  EXPECT_TRUE(right_empty->right.empty());
}

TEST(GoMergeTest, StepBudgetGuardsRunaway) {
  GoMergeEngine tiny(/*max_steps=*/3);
  OpList a, b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(Operation::Insert(0, i).At(0, 1));
    b.push_back(Operation::Insert(0, 10 + i).At(0, 2));
  }
  auto r = tiny.TransformLists(a, b);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), common::StatusCode::kResourceExhausted);
}

TEST(GoMergeTest, RebaseConvergesOnLists) {
  GoMergeEngine engine;
  Array base = {1, 2, 3};
  // Left peer: erase 0, then set new index 1 -> 9. Right peer: insert 0.
  Array left_state = base, right_state = base;
  OpList left = {Operation::Erase(0).At(0, 1),
                 Operation::Set(1, 9).At(0, 1)};
  OpList right = {Operation::Insert(0, 7).At(0, 2)};
  ASSERT_TRUE(ApplyAll(left, &left_state).ok());
  ASSERT_TRUE(ApplyAll(right, &right_state).ok());

  auto merged = engine.TransformLists(left, right);
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(ApplyAll(merged->right, &left_state).ok());
  ASSERT_TRUE(ApplyAll(merged->left, &right_state).ok());
  EXPECT_EQ(left_state, right_state);
  EXPECT_EQ(left_state, (Array{7, 2, 9}));
}

TEST(GoMergeTest, DiscardedOpsDropOutOfTheRebase) {
  GoMergeEngine engine;
  // Both sides clear: everything cancels.
  auto merged = engine.TransformLists({Operation::Clear().At(0, 1)},
                                      {Operation::Clear().At(0, 2)});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->left.empty());
  EXPECT_TRUE(merged->right.empty());
}

}  // namespace
}  // namespace xmodel::otgo
