#include <gtest/gtest.h>

#include "repl/read_write_concern.h"

namespace xmodel::repl {
namespace {

TEST(ConcernTest, LocalWriteReturnsImmediately) {
  ReplicaSetConfig config;
  ReplicaSet rs(config);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ClientSession session(&rs);
  WriteResult w = session.Write("w", WriteConcern::kLocal);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w.optime, (OpTime{1, 1}));
  // Nothing replicated yet.
  EXPECT_TRUE(rs.node(1).oplog().empty());
}

TEST(ConcernTest, MajorityWriteWaitsForCommit) {
  ReplicaSetConfig config;
  ReplicaSet rs(config);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ClientSession session(&rs);
  WriteResult w = session.Write("w", WriteConcern::kMajority);
  ASSERT_TRUE(w.ok());
  EXPECT_GE(rs.node(0).commit_point(), w.optime);
}

TEST(ConcernTest, MajorityWriteTimesOutWithoutQuorum) {
  ReplicaSetConfig config;
  config.num_nodes = 5;
  ReplicaSet rs(config);
  ASSERT_TRUE(rs.TryElect(0).ok());
  // Strand the leader with one follower: majority is unreachable.
  rs.network().Partition({{0, 1}});
  ClientSession session(&rs, /*max_rounds=*/10);
  WriteResult w = session.Write("stuck", WriteConcern::kMajority);
  EXPECT_EQ(w.status.code(), common::StatusCode::kResourceExhausted);
  // The write itself is applied on the leader (unknown durability, not a
  // rollback).
  EXPECT_EQ(rs.node(0).oplog().size(), 1u);
}

TEST(ConcernTest, MajorityReadHidesUncommitted) {
  ReplicaSetConfig config;
  ReplicaSet rs(config);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ClientSession session(&rs);
  ASSERT_TRUE(session.Write("committed", WriteConcern::kMajority).ok());
  ASSERT_TRUE(session.Write("pending", WriteConcern::kLocal).ok());

  auto local = session.Read(0, ReadConcern::kLocal);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(*local, (std::vector<std::string>{"committed", "pending"}));

  auto majority = session.Read(0, ReadConcern::kMajority);
  ASSERT_TRUE(majority.ok());
  EXPECT_EQ(*majority, (std::vector<std::string>{"committed"}));
}

TEST(ConcernTest, MajorityReadsNeverObserveRollback) {
  // The tunable-consistency guarantee tied to the spec's invariant: data
  // returned by a majority read is never rolled back.
  ReplicaSetConfig config;
  config.num_nodes = 5;
  ReplicaSet rs(config);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ClientSession session(&rs);
  ASSERT_TRUE(session.Write("durable", WriteConcern::kMajority).ok());

  // The leader takes doomed local writes in a minority partition.
  rs.network().Partition({{0}});
  ASSERT_TRUE(rs.ClientWrite(0, "doomed").ok());
  auto local_view = session.Read(0, ReadConcern::kLocal);
  ASSERT_TRUE(local_view.ok());
  EXPECT_EQ(local_view->size(), 2u);  // Local reads DO see doomed data.
  auto majority_view = session.Read(0, ReadConcern::kMajority);
  ASSERT_TRUE(majority_view.ok());
  EXPECT_EQ(*majority_view, (std::vector<std::string>{"durable"}));

  // Failover and rollback of the doomed write.
  ASSERT_TRUE(rs.TryElect(1).ok());
  ASSERT_TRUE(rs.ClientWrite(1, "winner").ok());
  rs.CatchUpAll();
  rs.network().Heal();
  rs.GossipAll();
  rs.CatchUpAll();

  // Every node's majority view contains only surviving history.
  for (int n = 0; n < rs.num_nodes(); ++n) {
    auto view = session.Read(n, ReadConcern::kMajority);
    ASSERT_TRUE(view.ok());
    for (const std::string& doc : *view) {
      EXPECT_NE(doc, "doomed");
    }
  }
  EXPECT_TRUE(rs.CommittedWritesDurable());
}

TEST(ConcernTest, ReadValidatesTarget) {
  ReplicaSetConfig config;
  config.num_nodes = 3;
  config.arbiters = {2};
  ReplicaSet rs(config);
  ClientSession session(&rs);
  EXPECT_FALSE(session.Read(2, ReadConcern::kLocal).ok());  // Arbiter.
  rs.CrashNode(1, false);
  EXPECT_FALSE(session.Read(1, ReadConcern::kLocal).ok());  // Down.
}

TEST(ConcernTest, NoLeaderNoWrite) {
  ReplicaSetConfig config;
  ReplicaSet rs(config);
  ClientSession session(&rs);
  EXPECT_FALSE(session.Write("w", WriteConcern::kLocal).ok());
}

}  // namespace
}  // namespace xmodel::repl
