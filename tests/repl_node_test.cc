#include <gtest/gtest.h>

#include <vector>

#include "repl/node.h"

namespace xmodel::repl {
namespace {

// Captures every trace event for inspection.
class RecordingSink : public ReplTraceSink {
 public:
  void OnTraceEvent(const ReplTraceEvent& event) override {
    events.push_back(event);
  }
  std::vector<ReplTraceEvent> events;
};

NodeOptions DefaultOptions() { return NodeOptions{}; }

TEST(NodeTest, ClientWriteEmitsEventAfterAppend) {
  Node node(0, DefaultOptions());
  RecordingSink sink;
  node.AttachTraceSink(&sink);
  node.BecomeLeader(1);
  ASSERT_TRUE(node.ClientWrite("w").ok());

  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].action, ReplAction::kBecomePrimaryByMagic);
  const ReplTraceEvent& write = sink.events[1];
  EXPECT_EQ(write.action, ReplAction::kClientWrite);
  // Visibility (§4.2.1): the event carries the oplog INCLUDING the new
  // entry — logged after the change, before it is visible to others.
  EXPECT_EQ(write.oplog_terms, (std::vector<int64_t>{1}));
  EXPECT_FALSE(write.oplog_from_stale_snapshot);
}

TEST(NodeTest, RoleChangesReadStaleSnapshot) {
  // Role transitions cannot take the oplog locks (the Figure-5 deadlock);
  // they read the MVCC snapshot instead.
  Node node(0, DefaultOptions());
  RecordingSink sink;
  node.AttachTraceSink(&sink);
  node.BecomeLeader(1);
  EXPECT_TRUE(sink.events.back().oplog_from_stale_snapshot);
  node.ClientWrite("w").ok();
  node.Stepdown();
  EXPECT_TRUE(sink.events.back().oplog_from_stale_snapshot);
  // The snapshot had caught up at the ClientWrite checkpoint, so the
  // stale read still shows the entry.
  EXPECT_EQ(sink.events.back().oplog_terms, (std::vector<int64_t>{1}));
}

TEST(NodeTest, ArbiterCrashesWhenTraced) {
  NodeOptions options;
  options.arbiter = true;
  Node arbiter(2, options);
  RecordingSink sink;
  arbiter.AttachTraceSink(&sink);
  // Any instrumented transition kills a traced arbiter (§4.2.2).
  arbiter.ReceiveHeartbeat(5, OpTime{}, false, false);
  EXPECT_TRUE(arbiter.crashed_by_tracing());
  EXPECT_FALSE(arbiter.alive());
  EXPECT_TRUE(sink.events.empty());
  // And it stays down: restart requires operator intervention.
  arbiter.Restart();
  EXPECT_FALSE(arbiter.alive());
}

TEST(NodeTest, UntracedArbiterWorks) {
  NodeOptions options;
  options.arbiter = true;
  Node arbiter(2, options);
  arbiter.ReceiveHeartbeat(5, OpTime{}, false, false);
  EXPECT_TRUE(arbiter.alive());
  EXPECT_EQ(arbiter.term(), 5);
}

TEST(NodeTest, LeadersDoNotPull) {
  Node leader(0, DefaultOptions());
  Node other(1, DefaultOptions());
  other.BecomeLeader(1);
  ASSERT_TRUE(other.ClientWrite("w").ok());
  leader.BecomeLeader(2);
  EXPECT_EQ(leader.PullOplogFrom(other, 10), 0);
  EXPECT_TRUE(leader.oplog().empty());
}

TEST(NodeTest, PullAppendsAndReportsBatches) {
  Node leader(0, DefaultOptions());
  leader.BecomeLeader(1);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(leader.ClientWrite("w").ok());
  Node follower(1, DefaultOptions());
  EXPECT_EQ(follower.PullOplogFrom(leader, 2), 2);
  EXPECT_EQ(follower.PullOplogFrom(leader, 10), 3);
  EXPECT_EQ(follower.PullOplogFrom(leader, 10), 0);  // Up to date.
  EXPECT_EQ(follower.oplog().Terms(), leader.oplog().Terms());
}

TEST(NodeTest, PullRollsBackDivergentSuffix) {
  Node a(0, DefaultOptions()), b(1, DefaultOptions());
  a.BecomeLeader(1);
  ASSERT_TRUE(a.ClientWrite("shared").ok());
  EXPECT_EQ(b.PullOplogFrom(a, 10), 1);
  // b diverges on its own term-2 leadership, then steps down.
  b.BecomeLeader(2);
  ASSERT_TRUE(b.ClientWrite("doomed").ok());
  b.Stepdown();
  // a moves on with a newer term-3 entry.
  a.Stepdown();
  a.ReceiveHeartbeat(3, OpTime{}, false, false);
  a.BecomeLeader(4);
  ASSERT_TRUE(a.ClientWrite("winner").ok());
  // b pulls from a: rollback of "doomed", then append of "winner".
  EXPECT_EQ(b.rollback_count(), 0);
  EXPECT_GT(b.PullOplogFrom(a, 10), 0);
  EXPECT_EQ(b.rollback_count(), 1);
  EXPECT_EQ(b.oplog().Terms(), a.oplog().Terms());
}

TEST(NodeTest, HeartbeatTermAndCommitRules) {
  Node leader(0, DefaultOptions());
  leader.BecomeLeader(1);
  ASSERT_TRUE(leader.ClientWrite("w").ok());

  Node follower(1, DefaultOptions());
  ASSERT_EQ(follower.PullOplogFrom(leader, 10), 1);

  // A commit point for an entry the follower HAS is adopted (term check).
  follower.ReceiveHeartbeat(1, OpTime{1, 1}, /*from_sync_source=*/false,
                            /*log_is_prefix_of_sender=*/true);
  EXPECT_EQ(follower.commit_point(), (OpTime{1, 1}));

  // A commit point beyond the follower's log is NOT adopted off the
  // sync-source path...
  Node behind(2, DefaultOptions());
  behind.ReceiveHeartbeat(1, OpTime{1, 1}, false, false);
  EXPECT_TRUE(behind.commit_point().IsNull());
  // ...and on the sync-source path it is capped at last applied.
  behind.ReceiveHeartbeat(1, OpTime{1, 1}, true, true);
  EXPECT_TRUE(behind.commit_point().IsNull());  // Empty log: cap is null.
  ASSERT_EQ(behind.PullOplogFrom(leader, 10), 1);
  behind.ReceiveHeartbeat(1, OpTime{1, 1}, true, true);
  EXPECT_EQ(behind.commit_point(), (OpTime{1, 1}));
}

TEST(NodeTest, HigherTermDethronesLeader) {
  Node leader(0, DefaultOptions());
  RecordingSink sink;
  leader.AttachTraceSink(&sink);
  leader.BecomeLeader(1);
  leader.ReceiveHeartbeat(3, OpTime{}, false, false);
  EXPECT_EQ(leader.role(), Role::kFollower);
  EXPECT_EQ(leader.term(), 3);
  EXPECT_EQ(sink.events.back().action, ReplAction::kStepdown);
}

TEST(NodeTest, JournalProtectsReportedEntries) {
  Node node(0, DefaultOptions());
  node.BecomeLeader(1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(node.ClientWrite("w").ok());
  node.MarkDurableUpTo(2);
  node.Crash(/*unclean=*/true);
  // Only the newest entry can be lost, and entries <= durable_index never.
  EXPECT_EQ(node.oplog().size(), 2u);
  node.Restart();
  EXPECT_EQ(node.role(), Role::kFollower);
  node.Crash(/*unclean=*/true);
  EXPECT_EQ(node.oplog().size(), 2u);  // All remaining entries journaled.
}

TEST(NodeTest, RestartAnnouncesRecoveredState) {
  Node node(0, DefaultOptions());
  RecordingSink sink;
  node.AttachTraceSink(&sink);
  node.BecomeLeader(1);
  ASSERT_TRUE(node.ClientWrite("w").ok());
  node.Crash(/*unclean=*/false);
  size_t before = sink.events.size();
  node.Restart();
  // The ex-leader's recovery is announced as a Stepdown transition.
  ASSERT_EQ(sink.events.size(), before + 1);
  EXPECT_EQ(sink.events.back().action, ReplAction::kStepdown);
  EXPECT_EQ(sink.events.back().role, "Follower");
}

TEST(NodeTest, InitialSyncEventOmitsImagePrefix) {
  NodeOptions options;
  options.initial_sync_oplog_window = 1;
  Node source(0, DefaultOptions());
  source.BecomeLeader(1);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(source.ClientWrite("w").ok());

  Node syncer(1, options);
  RecordingSink sink;
  syncer.AttachTraceSink(&sink);
  syncer.StartInitialSync(source);
  ASSERT_FALSE(sink.events.empty());
  // The protocol-visible log has 3 entries; the trace event shows only the
  // trailing window (the "Copying the oplog" discrepancy).
  EXPECT_EQ(syncer.oplog().size(), 3u);
  EXPECT_EQ(sink.events.back().oplog_terms.size(), 1u);
  EXPECT_EQ(syncer.initial_sync_image_prefix(), 2);
}

}  // namespace
}  // namespace xmodel::repl
