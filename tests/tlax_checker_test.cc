#include <gtest/gtest.h>

#include "common/rng.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"
#include "tlax/liveness.h"
#include "tlax/simulate.h"

namespace xmodel::tlax {
namespace {

using specs::CounterSpec;
using specs::DieHardSpec;

TEST(CheckerTest, CounterStateCount) {
  // Two counters in 0..N: (N+1)^2 distinct states.
  CounterSpec spec(/*limit=*/4);
  ModelChecker checker;
  CheckResult result = checker.Check(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.distinct_states, 25u);
  EXPECT_EQ(result.diameter, 8);  // (4,4) is 8 increments away.
}

TEST(CheckerTest, FindsShortestCounterexample) {
  CounterSpec spec(/*limit=*/10, /*violate_at=*/3);
  ModelChecker checker;
  CheckResult result = checker.Check(spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, "Sum");
  // BFS guarantees the minimal trace: init + 3 increments.
  EXPECT_EQ(result.violation->trace.size(), 4u);
  EXPECT_EQ(result.violation->trace.front().action, "Initial predicate");
  const State& last = result.violation->trace.back().state;
  EXPECT_EQ(last.var(0).int_value() + last.var(1).int_value(), 3);
}

TEST(CheckerTest, DieHardSolutionHasSevenStates) {
  // The classic result: the shortest way to measure 4 gallons takes 6 steps.
  DieHardSpec spec;
  ModelChecker checker;
  CheckResult result = checker.Check(spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, "BigNot4");
  EXPECT_EQ(result.violation->trace.size(), 7u);
  EXPECT_EQ(result.violation->trace.back().state.var(1).int_value(), 4);
}

TEST(CheckerTest, MaxStatesAborts) {
  CounterSpec spec(/*limit=*/100);
  CheckerOptions options;
  options.max_distinct_states = 50;
  ModelChecker checker(options);
  CheckResult result = checker.Check(spec);
  EXPECT_EQ(result.status.code(), common::StatusCode::kResourceExhausted);
}

TEST(CheckerTest, MaxDepthLimitsExploration) {
  CounterSpec spec(/*limit=*/10);
  CheckerOptions options;
  options.max_depth = 2;
  ModelChecker checker(options);
  CheckResult result = checker.Check(spec);
  ASSERT_TRUE(result.status.ok());
  // Depth 0: (0,0); depth 1: (1,0),(0,1); depth 2: (2,0),(1,1),(0,2).
  EXPECT_EQ(result.distinct_states, 6u);
}

TEST(CheckerTest, RecordsGraph) {
  CounterSpec spec(/*limit=*/2);
  CheckerOptions options;
  options.record_graph = true;
  ModelChecker checker(options);
  CheckResult result = checker.Check(spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_NE(result.graph, nullptr);
  EXPECT_EQ(result.graph->num_states(), 9u);
  // Each state (x,y) has an edge per enabled increment: 2*3*2 = 12 edges.
  EXPECT_EQ(result.graph->num_edges(), 12u);
  EXPECT_EQ(result.graph->initial_states().size(), 1u);

  std::string dot = result.graph->ToDot(spec.variables());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("IncrementX"), std::string::npos);
  EXPECT_NE(dot.find("x = 0"), std::string::npos);
}

TEST(CheckerTest, GeneratedStatesCountsDuplicates) {
  CounterSpec spec(/*limit=*/2);
  ModelChecker checker;
  CheckResult result = checker.Check(spec);
  // 12 transitions + 1 initial state = 13 generated (TLC counts inits).
  EXPECT_EQ(result.generated_states, 13u);
}

TEST(CheckerTest, DeadlockDetection) {
  // Counter with limit 1 deadlocks at (1,1) when deadlock checking is on.
  CounterSpec spec(/*limit=*/1);
  CheckerOptions options;
  options.check_deadlock = true;
  ModelChecker checker(options);
  CheckResult result = checker.Check(spec);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, "Deadlock");
  const State& last = result.violation->trace.back().state;
  EXPECT_EQ(last.var(0).int_value(), 1);
  EXPECT_EQ(last.var(1).int_value(), 1);
}

TEST(LivenessTest, LeadsToHoldsOnCounter) {
  // x=1 leads to x=2 in the counter spec (every path can still increment x).
  CounterSpec spec(/*limit=*/3);
  CheckerOptions options;
  options.record_graph = true;
  CheckResult result = ModelChecker(options).Check(spec);
  ASSERT_TRUE(result.status.ok());
  LeadsToResult lt = CheckLeadsTo(
      *result.graph,
      [](const State& s) { return s.var(0).int_value() == 1; },
      [](const State& s) { return s.var(0).int_value() == 2; });
  EXPECT_TRUE(lt.holds);
}

TEST(LivenessTest, AlwaysReachableHoldsOnCounter) {
  // After x=1, the state x=2 stays reachable until it happens; since x only
  // grows, "x >= 2 reachable" holds from every state after x=1.
  CounterSpec spec(/*limit=*/3);
  CheckerOptions options;
  options.record_graph = true;
  CheckResult result = ModelChecker(options).Check(spec);
  LeadsToResult lt = CheckAlwaysReachable(
      *result.graph,
      [](const State& s) { return s.var(0).int_value() == 1; },
      [](const State& s) { return s.var(0).int_value() >= 2; });
  EXPECT_TRUE(lt.holds);

  // But "x == 1 is always reachable after x == 1" fails: incrementing x
  // makes x==1 unreachable forever.
  LeadsToResult lt2 = CheckAlwaysReachable(
      *result.graph,
      [](const State& s) { return s.var(0).int_value() == 1; },
      [](const State& s) { return s.var(0).int_value() == 1; });
  EXPECT_FALSE(lt2.holds);
}

TEST(LivenessTest, LeadsToFailsOnQFreeCycle) {
  // A two-state spec that can loop between a and b forever without reaching
  // the goal g: a ~> g must fail via the cycle trap.
  class LoopSpec : public Spec {
   public:
    LoopSpec() : variables_{"v"} {
      auto go = [](int64_t from, int64_t to) {
        return [from, to](const State& s, std::vector<State>* out) {
          if (s.var(0).int_value() == from) {
            out->push_back(State({Value::Int(to)}));
          }
        };
      };
      actions_.push_back(Action{"AtoB", go(0, 1)});
      actions_.push_back(Action{"BtoA", go(1, 0)});
      actions_.push_back(Action{"BtoG", go(1, 2)});
    }
    std::string name() const override { return "Loop"; }
    const std::vector<std::string>& variables() const override {
      return variables_;
    }
    std::vector<State> InitialStates() const override {
      return {State({Value::Int(0)})};
    }
    const std::vector<Action>& actions() const override { return actions_; }
    const std::vector<Invariant>& invariants() const override {
      return invariants_;
    }

   private:
    std::vector<std::string> variables_;
    std::vector<Action> actions_;
    std::vector<Invariant> invariants_;
  };

  LoopSpec spec;
  CheckerOptions options;
  options.record_graph = true;
  CheckResult result = ModelChecker(options).Check(spec);
  ASSERT_TRUE(result.status.ok());

  auto at = [](int64_t v) {
    return [v](const State& s) { return s.var(0).int_value() == v; };
  };
  // The a<->b loop is a Q-free cycle: leads-to fails...
  EXPECT_FALSE(CheckLeadsTo(*result.graph, at(0), at(2)).holds);
  // ...but the goal remains reachable from everywhere in the loop.
  EXPECT_TRUE(CheckAlwaysReachable(*result.graph, at(0), at(2)).holds);
  // Trivially, P ~> P holds.
  EXPECT_TRUE(CheckLeadsTo(*result.graph, at(0), at(0)).holds);
}

TEST(LivenessTest, LeadsToFailsWhenBlocked) {
  // x=3 (the limit) can never lead to x=4: no Q-state exists at all.
  CounterSpec spec(/*limit=*/3);
  CheckerOptions options;
  options.record_graph = true;
  CheckResult result = ModelChecker(options).Check(spec);
  LeadsToResult lt = CheckLeadsTo(
      *result.graph,
      [](const State& s) { return s.var(0).int_value() == 3; },
      [](const State& s) { return s.var(0).int_value() == 4; });
  EXPECT_FALSE(lt.holds);
  EXPECT_TRUE(lt.counterexample_state.has_value());
}

TEST(LivenessTest, SccOnCounterGraphIsAllSingletons) {
  CounterSpec spec(/*limit=*/2);
  CheckerOptions options;
  options.record_graph = true;
  CheckResult result = ModelChecker(options).Check(spec);
  uint32_t num_components = 0;
  std::vector<uint32_t> comp =
      StronglyConnectedComponents(*result.graph, &num_components);
  // The counter graph is a DAG: every SCC is a singleton.
  EXPECT_EQ(num_components, result.graph->num_states());
  EXPECT_EQ(comp.size(), result.graph->num_states());
}

TEST(SimulateTest, FindsViolationEventually) {
  CounterSpec spec(/*limit=*/5, /*violate_at=*/4);
  common::Rng rng(42);
  SimulateOptions options;
  options.num_runs = 200;
  options.max_depth = 20;
  SimulateResult result = Simulate(spec, &rng, options);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, "Sum");
  // The violating path's last state must sum to 4.
  const State& last = result.violation->trace.back().state;
  EXPECT_EQ(last.var(0).int_value() + last.var(1).int_value(), 4);
}

TEST(SimulateTest, CleanSpecPasses) {
  CounterSpec spec(/*limit=*/5);
  common::Rng rng(1);
  SimulateResult result = Simulate(spec, &rng, {});
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_EQ(result.runs, 100u);
  EXPECT_GT(result.states_visited, 100u);
}

}  // namespace
}  // namespace xmodel::tlax
