#include <gtest/gtest.h>

#include "ot/table_ops.h"

namespace xmodel::ot {
namespace {

using DbOp = DbOperation;

Db MakeDb() {
  Db db;
  DbOp::CreateTable("users").Apply(&db).ok();
  DbOp::CreateObject("users", 1).Apply(&db).ok();
  DbOp::SetField("users", 1, "age", 30).Apply(&db).ok();
  DbOp::CreateList("users", 1, "scores").Apply(&db).ok();
  DbOp::ArrayOp("users", 1, "scores", Operation::Insert(0, 10))
      .Apply(&db)
      .ok();
  return db;
}

TEST(DbOperationTest, ApplyBasics) {
  Db db = MakeDb();
  ASSERT_EQ(db.tables.size(), 1u);
  const Object& user = db.tables["users"].objects[1];
  EXPECT_EQ(std::get<int64_t>(user.fields.at("age")), 30);
  EXPECT_EQ(std::get<Array>(user.fields.at("scores")), (Array{10}));
}

TEST(DbOperationTest, RenameMovesContents) {
  Db db = MakeDb();
  ASSERT_TRUE(DbOp::RenameTable("users", "people").Apply(&db).ok());
  EXPECT_EQ(db.tables.count("users"), 0u);
  ASSERT_EQ(db.tables.count("people"), 1u);
  EXPECT_EQ(db.tables["people"].objects.size(), 1u);
}

TEST(DbOperationTest, ShadowedOpsAreNoOps) {
  Db db;
  // Edits against missing containers are tolerated (merges deliver them).
  EXPECT_TRUE(DbOp::SetField("ghost", 1, "x", 1).Apply(&db).ok());
  EXPECT_TRUE(DbOp::EraseObject("ghost", 1).Apply(&db).ok());
  EXPECT_TRUE(
      DbOp::ArrayOp("ghost", 1, "xs", Operation::Clear()).Apply(&db).ok());
  EXPECT_TRUE(db.tables.empty());
}

TEST(DbOperationTest, AddIntegerAccumulates) {
  Db db = MakeDb();
  ASSERT_TRUE(DbOp::AddInteger("users", 1, "age", 5).Apply(&db).ok());
  ASSERT_TRUE(DbOp::AddInteger("users", 1, "age", -2).Apply(&db).ok());
  EXPECT_EQ(std::get<int64_t>(db.tables["users"].objects[1].fields["age"]),
            33);
}

TEST(DbOperationTest, LinkAndUnlink) {
  Db db = MakeDb();
  ASSERT_TRUE(DbOp::LinkObject("users", 1, "friend", 42).Apply(&db).ok());
  EXPECT_EQ(
      std::get<int64_t>(db.tables["users"].objects[1].fields["friend"]), 42);
  ASSERT_TRUE(DbOp::UnlinkObject("users", 1, "friend").Apply(&db).ok());
  EXPECT_EQ(db.tables["users"].objects[1].fields.count("friend"), 0u);
}

TEST(DbOperationTest, NineteenOpTypes) {
  // The paper's count: 19 operation types, 190 merge rules by symmetry.
  EXPECT_EQ(kNumRealmOpTypes, 19);
  EXPECT_EQ(19 * (19 + 1) / 2, 190);
}

// Convergence harness for a pair of concurrent Db operations.
void ExpectDbConverges(const Db& base, DbOp a, DbOp b) {
  a = a.At(0, 1);
  b = b.At(0, 2);
  DbMergeEngine engine;
  auto merged = engine.Merge(a, b);
  ASSERT_TRUE(merged.ok()) << a.ToString() << " x " << b.ToString();
  Db left = base, right = base;
  ASSERT_TRUE(a.Apply(&left).ok());
  for (const DbOp& op : merged->right) ASSERT_TRUE(op.Apply(&left).ok());
  ASSERT_TRUE(b.Apply(&right).ok());
  for (const DbOp& op : merged->left) ASSERT_TRUE(op.Apply(&right).ok());
  EXPECT_TRUE(left == right) << a.ToString() << " x " << b.ToString();
}

TEST(DbMergeTest, TrivialPairsConverge) {
  Db base = MakeDb();
  ExpectDbConverges(base, DbOp::CreateObject("users", 2),
                    DbOp::SetField("users", 1, "age", 40));
  ExpectDbConverges(base, DbOp::CreateTable("posts"),
                    DbOp::CreateTable("tags"));
  ExpectDbConverges(base, DbOp::SetField("users", 1, "a", 1),
                    DbOp::SetField("users", 1, "b", 2));
  ExpectDbConverges(base, DbOp::AddInteger("users", 1, "age", 3),
                    DbOp::AddInteger("users", 1, "age", 4));
}

TEST(DbMergeTest, SameFieldLastWriteWins) {
  Db base = MakeDb();
  ExpectDbConverges(base, DbOp::SetField("users", 1, "age", 10),
                    DbOp::SetField("users", 1, "age", 20));
  // And the surviving write is the higher client's.
  DbMergeEngine engine;
  auto merged = engine.Merge(DbOp::SetField("users", 1, "age", 10).At(0, 1),
                             DbOp::SetField("users", 1, "age", 20).At(0, 2));
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->left.empty());
  ASSERT_EQ(merged->right.size(), 1u);
  EXPECT_EQ(merged->right[0].value, 20);
}

TEST(DbMergeTest, DeletionShadowsEdits) {
  Db base = MakeDb();
  ExpectDbConverges(base, DbOp::EraseTable("users"),
                    DbOp::SetField("users", 1, "age", 99));
  ExpectDbConverges(base, DbOp::EraseObject("users", 1),
                    DbOp::AddInteger("users", 1, "age", 5));
  ExpectDbConverges(base, DbOp::EraseList("users", 1, "scores"),
                    DbOp::ArrayOp("users", 1, "scores",
                                  Operation::Insert(0, 5)));
  ExpectDbConverges(base, DbOp::EraseField("users", 1, "age"),
                    DbOp::SetField("users", 1, "age", 50));
}

TEST(DbMergeTest, ArrayOpsDelegateToMergeEngine) {
  Db base = MakeDb();
  DbOp::ArrayOp("users", 1, "scores", Operation::Insert(1, 20))
      .Apply(&base)
      .ok();
  DbOp::ArrayOp("users", 1, "scores", Operation::Insert(2, 30))
      .Apply(&base)
      .ok();
  // The Figure 7 pair inside list fields.
  ExpectDbConverges(base,
                    DbOp::ArrayOp("users", 1, "scores", Operation::Set(2, 4)),
                    DbOp::ArrayOp("users", 1, "scores", Operation::Erase(1)));
  // Array ops on DIFFERENT lists are trivial.
  DbOp::CreateList("users", 1, "tags").Apply(&base).ok();
  ExpectDbConverges(
      base, DbOp::ArrayOp("users", 1, "scores", Operation::Erase(0)),
      DbOp::ArrayOp("users", 1, "tags", Operation::Insert(0, 7)));
}

TEST(DbMergeTest, ListMergeConverges) {
  Db base = MakeDb();
  DbMergeEngine engine;
  DbOpList a = {DbOp::SetField("users", 1, "age", 11).At(0, 1),
                DbOp::ArrayOp("users", 1, "scores",
                              Operation::Insert(1, 20))
                    .At(0, 1)};
  DbOpList b = {DbOp::ArrayOp("users", 1, "scores", Operation::Erase(0))
                    .At(0, 2),
                DbOp::CreateObject("users", 2).At(0, 2)};
  auto merged = engine.MergeLists(a, b);
  ASSERT_TRUE(merged.ok());
  Db left = base, right = base;
  for (const DbOp& op : a) ASSERT_TRUE(op.Apply(&left).ok());
  for (const DbOp& op : merged->right) ASSERT_TRUE(op.Apply(&left).ok());
  for (const DbOp& op : b) ASSERT_TRUE(op.Apply(&right).ok());
  for (const DbOp& op : merged->left) ASSERT_TRUE(op.Apply(&right).ok());
  EXPECT_TRUE(left == right);
}

TEST(DbMergeTest, ToStringIsReadable) {
  EXPECT_EQ(DbOp::SetField("users", 1, "age", 30).ToString(),
            "SetField(users, obj 1, age = 30)");
  EXPECT_EQ(DbOp::RenameTable("a", "b").ToString(), "RenameTable(a -> b)");
  EXPECT_EQ(DbOp::ArrayOp("t", 2, "xs", Operation::Erase(1)).ToString(),
            "ArrayOp(t, obj 2, xs, ArrayErase{1})");
}

}  // namespace
}  // namespace xmodel::ot
