#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/transform_fuzzer.h"
#include "ot/fixture.h"
#include "ot/handwritten_cases.h"
#include "mbtcg/generator.h"
#include "ot/coverage.h"
#include "otgo/go_merge.h"
#include "specs/array_ot_spec.h"
#include "tlax/checker.h"

namespace xmodel::mbtcg {
namespace {

using specs::ArrayOtConfig;
using specs::ArrayOtSpec;

TEST(ArrayOtSpecTest, SeventeenOperationMenu) {
  // 3 Set + 4 Insert + 6 Move + 3 Erase + 1 Clear = 17 (the paper's
  // enumeration that yields 17^3 = 4,913 cases).
  EXPECT_EQ(ArrayOtSpec::EnumerateOps(3, 1, false).size(), 17u);
  // With the deprecated swap: + C(3,2) = 3 swaps.
  EXPECT_EQ(ArrayOtSpec::EnumerateOps(3, 1, true).size(), 20u);
}

TEST(ArrayOtSpecTest, ModelChecksClean) {
  ArrayOtSpec spec(ArrayOtConfig{});
  auto result = tlax::ModelChecker().Check(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.violation.has_value())
      << result.violation->kind;
  EXPECT_EQ(result.distinct_states, 29785u);  // 1+17+17^2+17^3+5*17^3.
}

TEST(ArrayOtSpecTest, SwapMoveBugFoundByModelChecker) {
  // §5.1.3: TLC encountered a StackOverflowError caused by the swap/move
  // merge never terminating; our checker reports the transcribed bug as a
  // MergeTerminates violation with a minimal trace.
  ArrayOtConfig config;
  config.include_swap = true;
  config.swap_move_bug = true;
  ArrayOtSpec spec(config);
  auto result = tlax::ModelChecker().Check(spec);
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, "MergeTerminates");
}

TEST(ArrayOtSpecTest, SwapWithFixedRulesChecksClean) {
  ArrayOtConfig config;
  config.include_swap = true;
  ArrayOtSpec spec(config);
  auto result = tlax::ModelChecker().Check(spec);
  EXPECT_FALSE(result.violation.has_value());
}

TEST(ArrayOtSpecTest, TranscriptionErrorCaught) {
  // §5.1.1: "the TLC model checker was readily able to catch human
  // transcription errors as safety violations."
  ArrayOtConfig config;
  config.inject_transcription_error = true;
  ArrayOtSpec spec(config);
  auto result = tlax::ModelChecker().Check(spec);
  ASSERT_TRUE(result.violation.has_value());
}

TEST(DotParserTest, RoundTripsSpecGraph) {
  ArrayOtConfig config;
  config.initial_array_len = 1;  // Tiny config for a fast test.
  config.num_clients = 2;
  ArrayOtSpec spec(config);
  tlax::CheckerOptions options;
  options.record_graph = true;
  auto checked = tlax::ModelChecker(options).Check(spec);
  ASSERT_TRUE(checked.status.ok());

  std::string dot = checked.graph->ToDot(spec.variables());
  auto graph = ParseDot(dot);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->nodes.size(), checked.graph->num_states());
  EXPECT_EQ(graph->edges.size(), checked.graph->num_edges());
  ASSERT_EQ(graph->initial.size(), 1u);
  // Node labels parse back into the spec's variables.
  const DotGraph::Node& root = graph->nodes.at(graph->initial.front());
  EXPECT_EQ(root.vars.count("serverState"), 1u);
  EXPECT_EQ(root.vars.count("err"), 1u);
}

TEST(DotParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDot("").ok());
  EXPECT_FALSE(ParseDot("digraph G {\n  what is this\n}").ok());
}

TEST(GeneratorTest, ProducesExactly4913Cases) {
  // The paper's headline number: "the Golang program generated 4,913 C++
  // test cases" for 3 clients, one op each, 3-element initial array.
  std::vector<TestCase> cases;
  GenerationReport report = GenerateTestCases(ArrayOtConfig{}, &cases);
  ASSERT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(cases.size(), 4913u);
  EXPECT_EQ(report.num_cases, 4913u);
  // The default path hands the in-memory graph straight to extraction: no
  // DOT dump is produced.
  EXPECT_EQ(report.dot_bytes, 0u);
  EXPECT_EQ(report.roots, 1u);

  // Every case is well-formed.
  for (const TestCase& c : cases) {
    EXPECT_EQ(c.initial, (ot::Array{1, 2, 3}));
    EXPECT_EQ(c.client_ops.size(), 3u);
    EXPECT_EQ(c.applied_ops.size(), 3u);
  }
  // Case ids are unique.
  std::vector<uint64_t> ids;
  for (const TestCase& c : cases) ids.push_back(c.case_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(GeneratorTest, ViaDotMatchesInMemoryExactly) {
  // The DOT round trip is the fidelity mode: it must produce the same
  // cases in the same order as the in-memory fast path, byte for byte.
  std::vector<TestCase> in_memory;
  GenerationReport mem_report =
      GenerateTestCases(ArrayOtConfig{}, &in_memory);
  ASSERT_TRUE(mem_report.status.ok()) << mem_report.status.ToString();
  EXPECT_EQ(mem_report.dot_bytes, 0u);

  GenerateOptions via_dot;
  via_dot.via_dot = true;
  std::vector<TestCase> round_tripped;
  GenerationReport dot_report =
      GenerateTestCases(ArrayOtConfig{}, &round_tripped, via_dot);
  ASSERT_TRUE(dot_report.status.ok()) << dot_report.status.ToString();
  EXPECT_GT(dot_report.dot_bytes, 0u);

  ASSERT_EQ(round_tripped.size(), in_memory.size());
  for (size_t i = 0; i < in_memory.size(); ++i) {
    EXPECT_EQ(round_tripped[i].case_id, in_memory[i].case_id)
        << "case order diverged at index " << i;
    EXPECT_EQ(round_tripped[i].initial, in_memory[i].initial);
    EXPECT_EQ(round_tripped[i].final_array, in_memory[i].final_array);
  }
  // Same generated file, byte for byte.
  EXPECT_EQ(GenerateCppTestFile(round_tripped, 50),
            GenerateCppTestFile(in_memory, 50));
}

TEST(GeneratorTest, ParallelGenerationIsWorkerInvariant) {
  // Both pipeline stages — graph-recording model check and per-leaf
  // extraction — run multi-worker; the output must not notice.
  std::vector<TestCase> base;
  ASSERT_TRUE(GenerateTestCases(ArrayOtConfig{}, &base).status.ok());

  for (int workers : {2, 4}) {
    GenerateOptions options;
    options.num_workers = workers;
    std::vector<TestCase> cases;
    GenerationReport report =
        GenerateTestCases(ArrayOtConfig{}, &cases, options);
    ASSERT_TRUE(report.status.ok()) << report.status.ToString();
    EXPECT_EQ(report.workers_used, workers);
    ASSERT_EQ(cases.size(), base.size()) << "workers=" << workers;
    for (size_t i = 0; i < base.size(); ++i) {
      ASSERT_EQ(cases[i].case_id, base[i].case_id)
          << "workers=" << workers << ", case order diverged at " << i;
    }
  }
}

TEST(GeneratorTest, AllCasesPassOnBothImplementations) {
  std::vector<TestCase> cases;
  ASSERT_TRUE(GenerateTestCases(ArrayOtConfig{}, &cases).status.ok());

  RunReport cpp_run = RunTestCases(cases);
  EXPECT_EQ(cpp_run.passed, cases.size())
      << (cpp_run.failures.empty() ? "" : cpp_run.failures.front());

  otgo::GoMergeEngine go;
  RunReport go_run = RunTestCases(cases, &go);
  EXPECT_EQ(go_run.passed, cases.size())
      << (go_run.failures.empty() ? "" : go_run.failures.front());
}

TEST(GeneratorTest, DescendingScheduleAlsoPasses) {
  ArrayOtConfig config;
  config.merge_descending = true;
  std::vector<TestCase> cases;
  ASSERT_TRUE(GenerateTestCases(config, &cases).status.ok());
  EXPECT_EQ(cases.size(), 4913u);
  RunReport run = RunTestCases(cases);
  EXPECT_EQ(run.passed, cases.size())
      << (run.failures.empty() ? "" : run.failures.front());
}

TEST(GeneratorTest, GeneratedFileShape) {
  std::vector<TestCase> cases;
  ASSERT_TRUE(GenerateTestCases(ArrayOtConfig{}, &cases).status.ok());
  std::string file = GenerateCppTestFile(cases, /*max_cases=*/3);
  EXPECT_NE(file.find("TEST(Transform, Node__"), std::string::npos);
  EXPECT_NE(file.find("TransformArrayFixture fixture{3, {1, 2, 3}}"),
            std::string::npos);
  EXPECT_NE(file.find("fixture.sync_all_clients();"), std::string::npos);
  EXPECT_NE(file.find("fixture.check_array("), std::string::npos);
  EXPECT_NE(file.find("fixture.check_ops(0, {"), std::string::npos);
  // Exactly three tests were emitted.
  size_t count = 0, pos = 0;
  while ((pos = file.find("TEST(", pos)) != std::string::npos) {
    ++count;
    pos += 5;
  }
  EXPECT_EQ(count, 3u);
}

TEST(GeneratorTest, DetectsImplementationDivergence) {
  // Sabotage a generated expectation: the runner must notice.
  std::vector<TestCase> cases;
  ASSERT_TRUE(GenerateTestCases(ArrayOtConfig{}, &cases).status.ok());
  ASSERT_FALSE(cases.empty());
  cases.resize(10);
  cases[3].final_array.push_back(12345);
  RunReport run = RunTestCases(cases);
  EXPECT_EQ(run.passed, 9u);
  ASSERT_EQ(run.failures.size(), 1u);
}

TEST(FuzzerTest, ConvergesOverRandomWorkloads) {
  fuzz::FuzzOptions options;
  options.iterations = 2000;
  options.include_swap = true;
  ot::CoverageRegistry::Instance().Reset();
  fuzz::FuzzReport report = fuzz::RunTransformFuzzer(options);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? ""
                                   : report.failures.front());
  EXPECT_EQ(report.executions, 2000u);
  EXPECT_GT(report.branches_covered, 20u);
}

TEST(FuzzerTest, DeterministicPerSeed) {
  fuzz::FuzzOptions options;
  options.iterations = 500;
  ot::CoverageRegistry::Instance().Reset();
  fuzz::FuzzReport a = fuzz::RunTransformFuzzer(options);
  ot::CoverageRegistry::Instance().Reset();
  fuzz::FuzzReport b = fuzz::RunTransformFuzzer(options);
  EXPECT_EQ(a.branches_covered, b.branches_covered);
}

TEST(CoverageOrderingTest, HandwrittenBelowFuzzerBelowGenerated) {
  // Experiment E7's ordering (paper: 21% < 92% < 100%).
  auto& registry = ot::CoverageRegistry::Instance();

  registry.Reset();
  for (const ot::HandwrittenCase& c : ot::HandwrittenCases()) {
    ot::TransformArrayFixture fixture(static_cast<int>(c.client_ops.size()),
                                      c.initial);
    for (size_t i = 0; i < c.client_ops.size(); ++i) {
      fixture.transaction(static_cast<int>(i), c.client_ops[i]);
    }
    fixture.sync_all_clients();
  }
  size_t handwritten = registry.covered_branches();

  registry.Reset();
  fuzz::FuzzOptions options;
  options.iterations = 20000;
  options.include_swap = true;
  fuzz::RunTransformFuzzer(options);
  size_t fuzzed = registry.covered_branches();

  registry.Reset();
  size_t generated_total = 0;
  for (bool descending : {false, true}) {
    ArrayOtConfig config;
    config.include_swap = true;
    config.merge_descending = descending;
    std::vector<TestCase> cases;
    ASSERT_TRUE(GenerateTestCases(config, &cases).status.ok());
    RunReport run = RunTestCases(cases);
    generated_total += run.passed;
    EXPECT_EQ(run.passed, run.total);
  }
  size_t generated = registry.covered_branches();

  EXPECT_LT(handwritten, fuzzed);
  EXPECT_LT(fuzzed, generated);
  EXPECT_EQ(generated, registry.total_branches());  // 100%.
  EXPECT_EQ(generated_total, 2u * 8000u);
}

}  // namespace
}  // namespace xmodel::mbtcg
