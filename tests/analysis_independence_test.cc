// Tests for the action-independence analysis: golden commutativity
// matrices on the toy specs, and the soundness contract of the sleep-set
// partial-order reduction they feed — the reduced exploration must reach
// exactly the same distinct states.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "analysis/footprint.h"
#include "analysis/independence.h"
#include "specs/raft_mongo_spec.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"

namespace xmodel::analysis {
namespace {

TEST(IndependenceTest, CounterMatrixGolden) {
  specs::CounterSpec spec(3);
  SpecFootprints footprints = InferFootprints(spec);
  tlax::ActionIndependence matrix = ComputeIndependence(spec, footprints);
  // The two increments touch disjoint variables and there is no state
  // constraint, so they commute.
  EXPECT_EQ(IndependenceToText(spec, matrix),
            "IncrementX  -.\n"
            "IncrementY  .-\n"
            "1 commuting pair(s) of 1\n");
}

TEST(IndependenceTest, DieHardMatrixGolden) {
  specs::DieHardSpec spec;
  SpecFootprints footprints = InferFootprints(spec);
  tlax::ActionIndependence matrix = ComputeIndependence(spec, footprints);
  // Fill/Empty of one jug commutes with Fill/Empty of the other (2x2
  // pairs); the two pour actions read and write both jugs, so they
  // conflict with everything.
  EXPECT_EQ(matrix.NumCommutingPairs(), 4u);
  EXPECT_EQ(IndependenceToText(spec, matrix),
            "FillSmall   -.C.CC\n"
            "FillBig     .-.CCC\n"
            "EmptySmall  C.-.CC\n"
            "EmptyBig    .C.-CC\n"
            "SmallToBig  CCCC-C\n"
            "BigToSmall  CCCCC-\n"
            "4 commuting pair(s) of 15\n");
}

TEST(IndependenceTest, ConstraintReadsDisqualifyWriters) {
  // RaftMongo's constraint bounds term and oplog length; actions writing
  // those variables must not commute with anything even when their own
  // footprints are disjoint — the pruned interleaving could pass through
  // an out-of-constraint state the checker never expands.
  specs::RaftMongoConfig config;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  SpecFootprints footprints = InferFootprints(spec);
  ASSERT_NE(footprints.constraint_reads, 0u);

  tlax::ActionIndependence matrix = ComputeIndependence(spec, footprints);
  const auto& actions = spec.actions();
  for (size_t a = 0; a < actions.size(); ++a) {
    if ((footprints.actions[a].writes() & footprints.constraint_reads) == 0) {
      continue;
    }
    for (size_t b = 0; b < actions.size(); ++b) {
      if (a == b) continue;
      EXPECT_FALSE(matrix.Commutes(a, b))
          << actions[a].name << " writes a constraint-read variable but "
          << "commutes with " << actions[b].name;
    }
  }
}

// The POR soundness contract: with a matrix from ComputeIndependence, the
// checker visits exactly the same distinct states, only generating fewer
// duplicate successors.
void ExpectSameStateSpace(const tlax::Spec& spec) {
  auto footprints = InferFootprints(spec);
  auto matrix = std::make_shared<tlax::ActionIndependence>(
      ComputeIndependence(spec, footprints));

  tlax::CheckResult plain = tlax::ModelChecker().Check(spec);
  tlax::CheckerOptions options;
  options.independence = matrix;
  tlax::CheckResult reduced = tlax::ModelChecker(options).Check(spec);

  ASSERT_TRUE(plain.status.ok());
  ASSERT_TRUE(reduced.status.ok());
  EXPECT_EQ(reduced.distinct_states, plain.distinct_states) << spec.name();
  EXPECT_EQ(reduced.violation.has_value(), plain.violation.has_value())
      << spec.name();
  EXPECT_LE(reduced.generated_states, plain.generated_states) << spec.name();
}

TEST(IndependenceTest, SleepSetsPreserveCounterStateSpace) {
  specs::CounterSpec spec(4);
  ExpectSameStateSpace(spec);
}

TEST(IndependenceTest, SleepSetsPreserveRaftMongoStateSpace) {
  specs::RaftMongoConfig config;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  ExpectSameStateSpace(spec);
}

TEST(IndependenceTest, SleepSetsPruneCounterSuccessors) {
  // The fully commuting Counter spec is the best case: the diamond
  // interleavings collapse, so strictly fewer successors are generated.
  specs::CounterSpec spec(4);
  auto footprints = InferFootprints(spec);
  auto matrix = std::make_shared<tlax::ActionIndependence>(
      ComputeIndependence(spec, footprints));
  tlax::CheckResult plain = tlax::ModelChecker().Check(spec);
  tlax::CheckerOptions options;
  options.independence = matrix;
  tlax::CheckResult reduced = tlax::ModelChecker(options).Check(spec);
  EXPECT_LT(reduced.generated_states, plain.generated_states);
}

TEST(IndependenceTest, SleepSetsPreserveViolations) {
  // A violating spec must still report a violation under POR (the trace
  // need not be minimal, but the verdict must match).
  specs::CounterSpec spec(4, /*violate_at=*/5);
  auto footprints = InferFootprints(spec);
  auto matrix = std::make_shared<tlax::ActionIndependence>(
      ComputeIndependence(spec, footprints));
  tlax::CheckerOptions options;
  options.independence = matrix;
  tlax::CheckResult reduced = tlax::ModelChecker(options).Check(spec);
  ASSERT_TRUE(reduced.violation.has_value());
  EXPECT_EQ(reduced.violation->kind, "Sum");
}

}  // namespace
}  // namespace xmodel::analysis
