// Tests for the action-independence analysis: golden commutativity
// matrices on the toy specs, the value-sensitive refinement layered on the
// abstract-domain pass, and the soundness contract of the sleep-set
// partial-order reduction they feed — the reduced exploration must reach
// exactly the same distinct states.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "analysis/domain.h"
#include "analysis/footprint.h"
#include "analysis/independence.h"
#include "obs/metrics.h"
#include "specs/raft_mongo_spec.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"

namespace xmodel::analysis {
namespace {

TEST(IndependenceTest, CounterMatrixGolden) {
  specs::CounterSpec spec(3);
  SpecFootprints footprints = InferFootprints(spec);
  tlax::ActionIndependence matrix = ComputeIndependence(spec, footprints);
  // The two increments touch disjoint variables and there is no state
  // constraint, so they commute.
  EXPECT_EQ(IndependenceToText(spec, matrix),
            "IncrementX  -.\n"
            "IncrementY  .-\n"
            "1 commuting pair(s) of 1\n");
}

TEST(IndependenceTest, DieHardMatrixGolden) {
  specs::DieHardSpec spec;
  SpecFootprints footprints = InferFootprints(spec);
  tlax::ActionIndependence matrix = ComputeIndependence(spec, footprints);
  // Fill/Empty of one jug commutes with Fill/Empty of the other (2x2
  // pairs); the two pour actions read and write both jugs, so they
  // conflict with everything.
  EXPECT_EQ(matrix.NumCommutingPairs(), 4u);
  EXPECT_EQ(IndependenceToText(spec, matrix),
            "FillSmall   -.C.CC\n"
            "FillBig     .-.CCC\n"
            "EmptySmall  C.-.CC\n"
            "EmptyBig    .C.-CC\n"
            "SmallToBig  CCCC-C\n"
            "BigToSmall  CCCCC-\n"
            "4 commuting pair(s) of 15\n");
}

TEST(IndependenceTest, ConstraintReadsDisqualifyWriters) {
  // RaftMongo's constraint bounds term and oplog length; actions writing
  // those variables must not commute with anything even when their own
  // footprints are disjoint — the pruned interleaving could pass through
  // an out-of-constraint state the checker never expands.
  specs::RaftMongoConfig config;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  SpecFootprints footprints = InferFootprints(spec);
  ASSERT_NE(footprints.constraint_reads, 0u);

  tlax::ActionIndependence matrix = ComputeIndependence(spec, footprints);
  const auto& actions = spec.actions();
  for (size_t a = 0; a < actions.size(); ++a) {
    if ((footprints.actions[a].writes() & footprints.constraint_reads) == 0) {
      continue;
    }
    for (size_t b = 0; b < actions.size(); ++b) {
      if (a == b) continue;
      EXPECT_FALSE(matrix.Commutes(a, b))
          << actions[a].name << " writes a constraint-read variable but "
          << "commutes with " << actions[b].name;
    }
  }
}

// The POR soundness contract: with a matrix from ComputeIndependence, the
// checker visits exactly the same distinct states, only generating fewer
// duplicate successors.
void ExpectSameStateSpace(const tlax::Spec& spec) {
  auto footprints = InferFootprints(spec);
  auto matrix = std::make_shared<tlax::ActionIndependence>(
      ComputeIndependence(spec, footprints));

  tlax::CheckResult plain = tlax::ModelChecker().Check(spec);
  tlax::CheckerOptions options;
  options.independence = matrix;
  tlax::CheckResult reduced = tlax::ModelChecker(options).Check(spec);

  ASSERT_TRUE(plain.status.ok());
  ASSERT_TRUE(reduced.status.ok());
  EXPECT_EQ(reduced.distinct_states, plain.distinct_states) << spec.name();
  EXPECT_EQ(reduced.violation.has_value(), plain.violation.has_value())
      << spec.name();
  EXPECT_LE(reduced.generated_states, plain.generated_states) << spec.name();
}

TEST(IndependenceTest, SleepSetsPreserveCounterStateSpace) {
  specs::CounterSpec spec(4);
  ExpectSameStateSpace(spec);
}

TEST(IndependenceTest, SleepSetsPreserveRaftMongoStateSpace) {
  specs::RaftMongoConfig config;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  ExpectSameStateSpace(spec);
}

TEST(IndependenceTest, SleepSetsPruneCounterSuccessors) {
  // The fully commuting Counter spec is the best case: the diamond
  // interleavings collapse, so strictly fewer successors are generated.
  specs::CounterSpec spec(4);
  auto footprints = InferFootprints(spec);
  auto matrix = std::make_shared<tlax::ActionIndependence>(
      ComputeIndependence(spec, footprints));
  tlax::CheckResult plain = tlax::ModelChecker().Check(spec);
  tlax::CheckerOptions options;
  options.independence = matrix;
  tlax::CheckResult reduced = tlax::ModelChecker(options).Check(spec);
  EXPECT_LT(reduced.generated_states, plain.generated_states);
}

specs::RaftMongoSpec MakeRaftMongo(specs::RaftMongoVariant variant,
                                   bool use_symmetry = false) {
  specs::RaftMongoConfig config;
  config.variant = variant;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  config.use_symmetry = use_symmetry;
  return specs::RaftMongoSpec(config);
}

TEST(RefinementTest, RefinedMatrixIsSupersetOfBase) {
  specs::RaftMongoSpec spec = MakeRaftMongo(specs::RaftMongoVariant::kDetailed);
  SpecFootprints footprints = InferFootprints(spec);
  SpecDomains domains = InferDomains(spec);
  ASSERT_TRUE(domains.exhaustive);

  tlax::ActionIndependence base = ComputeIndependence(spec, footprints);
  RefinedIndependence refined = RefineIndependence(spec, footprints, domains);
  EXPECT_EQ(refined.base_commuting, base.NumCommutingPairs());
  for (size_t a = 0; a < spec.actions().size(); ++a) {
    for (size_t b = a + 1; b < spec.actions().size(); ++b) {
      if (base.Commutes(a, b)) {
        EXPECT_TRUE(refined.matrix.Commutes(a, b))
            << "refinement dropped " << spec.actions()[a].name << " <-> "
            << spec.actions()[b].name;
      }
    }
  }
  EXPECT_EQ(refined.matrix.NumCommutingPairs(),
            refined.base_commuting + refined.added.size());
}

TEST(RefinementTest, ConstraintClosureUnlocksRaftMongoPairs) {
  // The footprint-only matrix disqualifies every writer of a
  // constraint-read variable (term, votedTerm, oplog). The domain pass
  // proves AppendOplog, RollbackOplog, and term gossip closed over the
  // constrained region, unlocking their disjoint-footprint pairs:
  // Detailed 2 -> 8 commuting pairs, Abstract 1 -> 5.
  {
    specs::RaftMongoSpec spec =
        MakeRaftMongo(specs::RaftMongoVariant::kDetailed);
    SpecFootprints footprints = InferFootprints(spec);
    SpecDomains domains = InferDomains(spec);
    ASSERT_TRUE(domains.exhaustive);
    RefinedIndependence refined =
        RefineIndependence(spec, footprints, domains);
    EXPECT_EQ(refined.base_commuting, 2u);
    EXPECT_EQ(refined.matrix.NumCommutingPairs(), 8u);
    EXPECT_EQ(refined.added.size(), 6u);
  }
  {
    specs::RaftMongoSpec spec =
        MakeRaftMongo(specs::RaftMongoVariant::kAbstract);
    SpecFootprints footprints = InferFootprints(spec);
    SpecDomains domains = InferDomains(spec);
    ASSERT_TRUE(domains.exhaustive);
    RefinedIndependence refined =
        RefineIndependence(spec, footprints, domains);
    EXPECT_EQ(refined.base_commuting, 1u);
    EXPECT_EQ(refined.matrix.NumCommutingPairs(), 5u);
    EXPECT_EQ(refined.added.size(), 4u);
  }
}

TEST(RefinementTest, TruncatedProbeProvesNothing) {
  // Constraint closure is only a proof when the probe exhausted the
  // reachable region; a truncated probe must leave the base matrix
  // untouched.
  specs::RaftMongoSpec spec = MakeRaftMongo(specs::RaftMongoVariant::kDetailed);
  SpecFootprints footprints = InferFootprints(spec);
  DomainOptions options;
  options.max_samples = 20;
  SpecDomains domains = InferDomains(spec, options);
  ASSERT_FALSE(domains.exhaustive);
  RefinedIndependence refined = RefineIndependence(spec, footprints, domains);
  EXPECT_TRUE(refined.added.empty());
  EXPECT_EQ(refined.matrix.NumCommutingPairs(), refined.base_commuting);
}

TEST(RefinementTest, RefinedMatrixPreservesStateSpaceAndSleepsMore) {
  // The acceptance bar for the whole refinement chain: against the
  // footprint-only baseline the refined matrix must visit bit-identical
  // distinct/diameter while putting strictly more actions to sleep, and
  // the checker.por.actions_slept counter must account for the run.
  specs::RaftMongoSpec spec = MakeRaftMongo(specs::RaftMongoVariant::kDetailed);
  SpecFootprints footprints = InferFootprints(spec);
  SpecDomains domains = InferDomains(spec);
  ASSERT_TRUE(domains.exhaustive);
  RefinedIndependence refined = RefineIndependence(spec, footprints, domains);
  ASSERT_GT(refined.matrix.NumCommutingPairs(), refined.base_commuting);

  tlax::CheckerOptions base_options;
  base_options.independence = std::make_shared<tlax::ActionIndependence>(
      ComputeIndependence(spec, footprints));
  tlax::CheckResult base = tlax::ModelChecker(base_options).Check(spec);
  ASSERT_TRUE(base.status.ok());

  auto& slept_counter =
      obs::MetricsRegistry::Global().GetCounter("checker.por.actions_slept");
  const uint64_t counter_before = slept_counter.value();

  tlax::CheckerOptions refined_options;
  refined_options.independence =
      std::make_shared<tlax::ActionIndependence>(refined.matrix);
  tlax::CheckResult reduced = tlax::ModelChecker(refined_options).Check(spec);
  ASSERT_TRUE(reduced.status.ok());

  EXPECT_EQ(reduced.distinct_states, base.distinct_states);
  EXPECT_EQ(reduced.diameter, base.diameter);
  EXPECT_EQ(reduced.violation.has_value(), base.violation.has_value());
  EXPECT_GT(reduced.por_slept_actions, base.por_slept_actions)
      << "value-sensitive refinement must prune strictly more";
  EXPECT_EQ(slept_counter.value() - counter_before,
            reduced.por_slept_actions)
      << "the metrics registry must account for the refined run";
}

TEST(RefinementTest, ComposesWithSymmetryCanonicalization) {
  // Regression for the probe/checker contract: footprint, domain, and
  // independence inference all sample CANONICAL states, so switching on
  // symmetry reduction must compose — same reachable quotient space with
  // and without the refined matrix.
  specs::RaftMongoSpec spec =
      MakeRaftMongo(specs::RaftMongoVariant::kAbstract, /*use_symmetry=*/true);
  SpecFootprints footprints = InferFootprints(spec);
  SpecDomains domains = InferDomains(spec);
  ASSERT_TRUE(domains.exhaustive);
  RefinedIndependence refined = RefineIndependence(spec, footprints, domains);

  tlax::CheckResult plain = tlax::ModelChecker().Check(spec);
  ASSERT_TRUE(plain.status.ok());
  // The domain probe walked the same symmetry-reduced quotient the
  // checker explores.
  EXPECT_EQ(domains.joined_states, plain.distinct_states);
  EXPECT_GE(domains.StateBound(), static_cast<double>(plain.distinct_states));

  tlax::CheckerOptions options;
  options.independence =
      std::make_shared<tlax::ActionIndependence>(refined.matrix);
  tlax::CheckResult reduced = tlax::ModelChecker(options).Check(spec);
  ASSERT_TRUE(reduced.status.ok());
  EXPECT_EQ(reduced.distinct_states, plain.distinct_states);
  EXPECT_EQ(reduced.diameter, plain.diameter);
}

TEST(IndependenceTest, SleepSetsPreserveViolations) {
  // A violating spec must still report a violation under POR (the trace
  // need not be minimal, but the verdict must match).
  specs::CounterSpec spec(4, /*violate_at=*/5);
  auto footprints = InferFootprints(spec);
  auto matrix = std::make_shared<tlax::ActionIndependence>(
      ComputeIndependence(spec, footprints));
  tlax::CheckerOptions options;
  options.independence = matrix;
  tlax::CheckResult reduced = tlax::ModelChecker(options).Check(spec);
  ASSERT_TRUE(reduced.violation.has_value());
  EXPECT_EQ(reduced.violation->kind, "Sum");
}

}  // namespace
}  // namespace xmodel::analysis
