// Verdict invariance of the relaxed work-stealing exploration policy:
// the contract (DESIGN.md "Exploration policies") is that relaxed mode
// reports the identical distinct-state count and violation verdict as
// deterministic level-sync, at any worker count, on clean and violating
// specs alike — only order-dependent fields (diameter, frontier peak,
// trace shape, POR tallies) may differ, and those must be flagged via
// CheckResult::order_fields_approximate. Runs under the TSan CI job:
// the work-stealing deques, the barrier-free POR settle, and the live
// counter flush are the new concurrent surfaces.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/footprint.h"
#include "analysis/independence.h"
#include "specs/array_ot_spec.h"
#include "specs/locking_spec.h"
#include "specs/raft_mongo_spec.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"
#include "tlax/spec.h"

namespace xmodel::tlax {
namespace {

// Level-sync baseline vs. relaxed runs at 1/2/4 workers.
//
// The cross-policy contract differs between clean and violating specs
// (DESIGN.md "Exploration policies"): on a clean spec both policies
// explore exactly the reachable space, so distinct (and generated, POR
// aside) must match level-sync at every worker count. On a violating
// spec level-sync stops at the violating BFS level while relaxed drains
// the ENTIRE reachable space — that full drain is precisely what keeps
// the relaxed counts and verdict worker-count-invariant — so there the
// assertion is: identical verdict to level-sync, and distinct/generated
// identical across all relaxed worker counts (and ≥ the level-sync
// prefix).
void ExpectRelaxedMatchesLevel(const Spec& spec, CheckerOptions options = {},
                               bool generated_exact = true) {
  options.exploration = ExplorationPolicy::kLevelSync;
  options.num_workers = 1;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  EXPECT_EQ(base.policy_used, ExplorationPolicy::kLevelSync);
  EXPECT_FALSE(base.order_fields_approximate);
  EXPECT_TRUE(base.worker_steals.empty());
  const bool violating = base.violation.has_value();

  std::optional<CheckResult> relaxed_base;
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE(testing::Message() << spec.name() << " relaxed with "
                                    << workers << " workers");
    options.exploration = ExplorationPolicy::kRelaxed;
    options.num_workers = workers;
    CheckResult result = ModelChecker(options).Check(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.workers_used, workers);
    EXPECT_EQ(result.policy_used, ExplorationPolicy::kRelaxed);
    EXPECT_TRUE(result.policy_notice.empty()) << result.policy_notice;
    EXPECT_TRUE(result.order_fields_approximate);
    EXPECT_EQ(result.worker_steals.size(), static_cast<size_t>(workers));

    if (!violating) {
      EXPECT_EQ(result.distinct_states, base.distinct_states);
      if (generated_exact) {
        EXPECT_EQ(result.generated_states, base.generated_states);
      }
    } else {
      EXPECT_GE(result.distinct_states, base.distinct_states)
          << "relaxed drains the full space, a superset of the level-sync "
             "prefix";
      if (!relaxed_base.has_value()) {
        relaxed_base = result;
      } else {
        // Worker-count invariance within the relaxed policy.
        EXPECT_EQ(result.distinct_states, relaxed_base->distinct_states);
        if (generated_exact) {
          EXPECT_EQ(result.generated_states,
                    relaxed_base->generated_states);
        }
        ASSERT_TRUE(result.violation.has_value());
        EXPECT_EQ(result.violation->kind, relaxed_base->violation->kind);
      }
    }
    EXPECT_EQ(result.fingerprint_collisions, base.fingerprint_collisions);
    EXPECT_GE(result.idle_fraction, 0.0);
    EXPECT_LE(result.idle_fraction, 1.0);
    // No barriers — the barrier profile must stay empty, the relaxed one
    // populated (profiling defaults on).
    EXPECT_TRUE(result.worker_barrier_wait_ms.empty());
    EXPECT_EQ(result.worker_busy_ms.size(), static_cast<size_t>(workers));
    EXPECT_EQ(result.worker_steal_ms.size(), static_cast<size_t>(workers));
    EXPECT_EQ(result.worker_starve_ms.size(), static_cast<size_t>(workers));

    ASSERT_EQ(result.violation.has_value(), base.violation.has_value());
    if (base.violation.has_value()) {
      EXPECT_EQ(result.violation->kind, base.violation->kind);
      // The relaxed trace is approximate (need not be minimal), but must
      // be a real behavior ending at a violating state.
      ASSERT_FALSE(result.violation->trace.empty());
      EXPECT_EQ(result.violation->trace.front().action,
                "Initial predicate");
    }
  }
}

TEST(RelaxedPolicyTest, RaftMongoDetailed) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  ExpectRelaxedMatchesLevel(specs::RaftMongoSpec(config));
}

TEST(RelaxedPolicyTest, RaftMongoAbstractWithSymmetry) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kAbstract;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  config.use_symmetry = true;
  ExpectRelaxedMatchesLevel(specs::RaftMongoSpec(config));
}

TEST(RelaxedPolicyTest, LockingWithDeadlockCheck) {
  specs::LockingConfig config;
  config.num_contexts = 2;
  CheckerOptions options;
  options.check_deadlock = true;
  ExpectRelaxedMatchesLevel(specs::LockingSpec(config), options);
}

TEST(RelaxedPolicyTest, ArrayOt) {
  specs::ArrayOtConfig config;
  config.num_clients = 2;
  config.initial_array_len = 2;
  ExpectRelaxedMatchesLevel(specs::ArrayOtSpec(config));
}

TEST(RelaxedPolicyTest, ArrayOtWithInjectedTranscriptionError) {
  // The §5.1.1 deliberate transcription error: relaxed mode must find the
  // same violation kind as level-sync at every worker count, even though
  // it drains the whole space instead of stopping at the first level.
  specs::ArrayOtConfig config;
  config.num_clients = 2;
  config.initial_array_len = 2;
  config.inject_transcription_error = true;
  specs::ArrayOtSpec spec(config);
  CheckResult base = ModelChecker().Check(spec);
  ASSERT_TRUE(base.violation.has_value());
  ExpectRelaxedMatchesLevel(spec);
}

TEST(RelaxedPolicyTest, CounterViolation) {
  // Mid-space invariant violation with many candidate states: exercises
  // the relaxed (fingerprint, kind) winner selection.
  ExpectRelaxedMatchesLevel(
      specs::CounterSpec(/*limit=*/30, /*violate_at=*/17));
}

TEST(RelaxedPolicyTest, DieHardFindsTheViolation) {
  ExpectRelaxedMatchesLevel(specs::DieHardSpec());
}

TEST(RelaxedPolicyTest, PorDistinctStatesStayExact) {
  // Barrier-free POR (immediate sleep-mask settle): the explored state
  // set must still be exact and worker-count-invariant; slept/generated
  // tallies are approximate, so only distinct and the verdict are
  // compared.
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kAbstract;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);
  analysis::SpecFootprints footprints = analysis::InferFootprints(spec);
  CheckerOptions options;
  options.independence = std::make_shared<ActionIndependence>(
      analysis::ComputeIndependence(spec, footprints));
  ExpectRelaxedMatchesLevel(spec, options, /*generated_exact=*/false);
}

TEST(RelaxedPolicyTest, PorViolationVerdictStaysExact) {
  specs::CounterSpec spec(/*limit=*/30, /*violate_at=*/17);
  analysis::SpecFootprints footprints = analysis::InferFootprints(spec);
  CheckerOptions options;
  options.independence = std::make_shared<ActionIndependence>(
      analysis::ComputeIndependence(spec, footprints));
  ExpectRelaxedMatchesLevel(spec, options, /*generated_exact=*/false);
}

TEST(RelaxedPolicyTest, RecordGraphClampsToLevelWithNotice) {
  CheckerOptions options;
  options.exploration = ExplorationPolicy::kRelaxed;
  options.record_graph = true;
  options.num_workers = 2;
  CheckResult result = ModelChecker(options).Check(specs::CounterSpec(4));
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.policy_used, ExplorationPolicy::kLevelSync);
  EXPECT_FALSE(result.policy_notice.empty());
  EXPECT_FALSE(result.order_fields_approximate);
  ASSERT_NE(result.graph, nullptr);
  EXPECT_EQ(result.graph->num_states(), result.distinct_states);
}

TEST(RelaxedPolicyTest, MaxDepthClampsToLevelWithNotice) {
  specs::CounterSpec spec(/*limit=*/20);
  CheckerOptions level_options;
  level_options.max_depth = 5;
  CheckResult level = ModelChecker(level_options).Check(spec);

  CheckerOptions options = level_options;
  options.exploration = ExplorationPolicy::kRelaxed;
  options.num_workers = 2;
  CheckResult result = ModelChecker(options).Check(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.policy_used, ExplorationPolicy::kLevelSync);
  EXPECT_FALSE(result.policy_notice.empty());
  // Clamped means clamped: the run is the deterministic level-sync one.
  EXPECT_EQ(result.distinct_states, level.distinct_states);
  EXPECT_EQ(result.generated_states, level.generated_states);
  EXPECT_EQ(result.diameter, level.diameter);
}

TEST(RelaxedPolicyTest, ResourceExhaustionStillAborts) {
  specs::CounterSpec spec(/*limit=*/100);
  for (int workers : {1, 4}) {
    CheckerOptions options;
    options.exploration = ExplorationPolicy::kRelaxed;
    options.num_workers = workers;
    options.max_distinct_states = 50;
    CheckResult result = ModelChecker(options).Check(spec);
    EXPECT_EQ(result.status.code(), common::StatusCode::kResourceExhausted)
        << "workers=" << workers;
  }
}

TEST(RelaxedPolicyTest, ParsePolicyNames) {
  ExplorationPolicy policy = ExplorationPolicy::kLevelSync;
  EXPECT_TRUE(ParseExplorationPolicy("relaxed", &policy));
  EXPECT_EQ(policy, ExplorationPolicy::kRelaxed);
  EXPECT_TRUE(ParseExplorationPolicy("level", &policy));
  EXPECT_EQ(policy, ExplorationPolicy::kLevelSync);
  policy = ExplorationPolicy::kRelaxed;
  EXPECT_FALSE(ParseExplorationPolicy("bogus", &policy));
  EXPECT_EQ(policy, ExplorationPolicy::kRelaxed) << "failed parse must not "
                                                    "touch the output";
  EXPECT_STREQ(ExplorationPolicyName(ExplorationPolicy::kRelaxed),
               "relaxed");
  EXPECT_STREQ(ExplorationPolicyName(ExplorationPolicy::kLevelSync),
               "level");
}

}  // namespace
}  // namespace xmodel::tlax
