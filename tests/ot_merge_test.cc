#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/coverage.h"
#include "ot/merge.h"
#include "otgo/go_merge.h"

namespace xmodel::ot {
namespace {

// Enumerates every distinct operation against an n-element array
// (including boundary indexes), stamped with the given metadata.
std::vector<Operation> AllOps(int n, int64_t ts, int64_t cid,
                              bool include_swap) {
  std::vector<Operation> ops;
  for (int i = 0; i < n; ++i) ops.push_back(Operation::Set(i, 900 + i));
  for (int i = 0; i <= n; ++i) ops.push_back(Operation::Insert(i, 950 + i));
  for (int f = 0; f < n; ++f) {
    for (int t = 0; t < n; ++t) ops.push_back(Operation::Move(f, t));
  }
  if (include_swap) {
    for (int x = 0; x < n; ++x) {
      for (int y = 0; y < n; ++y) ops.push_back(Operation::Swap(x, y));
    }
  }
  for (int i = 0; i < n; ++i) ops.push_back(Operation::Erase(i));
  ops.push_back(Operation::Clear());
  for (Operation& op : ops) op = op.At(ts, cid);
  return ops;
}

// One TP1 sweep configuration: array length and the two ops' timestamps
// (equal timestamps exercise the client-id tie-breaks in both directions).
struct Tp1Config {
  int array_len;
  int64_t ts_a;
  int64_t ts_b;
};

class MergeTp1Test : public ::testing::TestWithParam<Tp1Config> {};

// The convergence property (TP1): for every pair of concurrent operations
// a, b valid on a state S,   S·a·T(b,a) == S·b·T(a,b).
TEST_P(MergeTp1Test, EveryPairConverges) {
  const Tp1Config config = GetParam();
  MergeEngine engine;
  Array base;
  for (int i = 0; i < config.array_len; ++i) base.push_back(100 + i);

  int checked = 0;
  for (const Operation& a : AllOps(config.array_len, config.ts_a, 1, true)) {
    for (const Operation& b :
         AllOps(config.array_len, config.ts_b, 2, true)) {
      ++checked;
      auto merged = engine.Merge(a, b);
      ASSERT_TRUE(merged.ok())
          << a.ToString() << " x " << b.ToString() << ": "
          << merged.status().ToString();
      Array left = base, right = base;
      ASSERT_TRUE(a.Apply(&left).ok());
      ASSERT_TRUE(ApplyAll(merged->right, &left).ok())
          << a.ToString() << " x " << b.ToString();
      ASSERT_TRUE(b.Apply(&right).ok());
      ASSERT_TRUE(ApplyAll(merged->left, &right).ok())
          << a.ToString() << " x " << b.ToString();
      EXPECT_EQ(left, right)
          << a.ToString() << " x " << b.ToString() << " -> "
          << ToString(merged->left) << " / " << ToString(merged->right);
    }
  }
  EXPECT_GT(checked, 0);
}

// The merge relation is symmetric: Merge(b, a) is Merge(a, b) mirrored.
TEST_P(MergeTp1Test, MergeIsSymmetric) {
  const Tp1Config config = GetParam();
  MergeEngine engine;
  for (const Operation& a : AllOps(config.array_len, config.ts_a, 1, true)) {
    for (const Operation& b :
         AllOps(config.array_len, config.ts_b, 2, true)) {
      auto ab = engine.Merge(a, b);
      auto ba = engine.Merge(b, a);
      ASSERT_TRUE(ab.ok());
      ASSERT_TRUE(ba.ok());
      EXPECT_EQ(ab->left, ba->right) << a.ToString() << " x " << b.ToString();
      EXPECT_EQ(ab->right, ba->left) << a.ToString() << " x " << b.ToString();
    }
  }
}

// The Go re-implementation agrees exactly with the C++ rules on every
// swap-free pair.
TEST_P(MergeTp1Test, GoImplementationAgrees) {
  const Tp1Config config = GetParam();
  MergeEngine cpp_engine;
  otgo::GoMergeEngine go_engine;
  for (const Operation& a :
       AllOps(config.array_len, config.ts_a, 1, false)) {
    for (const Operation& b :
         AllOps(config.array_len, config.ts_b, 2, false)) {
      auto cpp = cpp_engine.MergeLists({a}, {b});
      auto go = go_engine.TransformLists({a}, {b});
      ASSERT_TRUE(cpp.ok());
      ASSERT_TRUE(go.ok());
      EXPECT_EQ(cpp->left, go->left) << a.ToString() << " x " << b.ToString();
      EXPECT_EQ(cpp->right, go->right)
          << a.ToString() << " x " << b.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Exhaustive, MergeTp1Test,
    ::testing::Values(Tp1Config{0, 1, 1}, Tp1Config{1, 1, 1},
                      Tp1Config{2, 1, 1}, Tp1Config{3, 1, 1},
                      Tp1Config{4, 1, 1}, Tp1Config{3, 1, 2},
                      Tp1Config{3, 2, 1}, Tp1Config{4, 1, 2},
                      Tp1Config{4, 2, 1}),
    [](const ::testing::TestParamInfo<Tp1Config>& info) {
      return "len" + std::to_string(info.param.array_len) + "_ts" +
             std::to_string(info.param.ts_a) + "v" +
             std::to_string(info.param.ts_b);
    });

TEST(MergeTest, FigureSevenRule) {
  // The paper's worked example (Figures 7-9): ArraySet{2, 4} merged with
  // ArrayErase{1} on {1, 2, 3}.
  MergeEngine engine;
  Operation set = Operation::Set(2, 4).At(0, 1);
  Operation erase = Operation::Erase(1).At(0, 2);
  auto merged = engine.Merge(set, erase);
  ASSERT_TRUE(merged.ok());
  // The set's index shifts down past the erase; the erase is unchanged.
  ASSERT_EQ(merged->left.size(), 1u);
  EXPECT_TRUE(merged->left[0].SameEffect(Operation::Set(1, 4)));
  ASSERT_EQ(merged->right.size(), 1u);
  EXPECT_TRUE(merged->right[0].SameEffect(Operation::Erase(1)));
}

TEST(MergeTest, SetOfErasedElementDiscarded) {
  MergeEngine engine;
  auto merged = engine.Merge(Operation::Set(1, 4).At(0, 1),
                             Operation::Erase(1).At(0, 2));
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->left.empty());  // "RESOLUTION: Discard the ArraySet."
  EXPECT_EQ(merged->right.size(), 1u);
}

TEST(MergeTest, SwapDecomposesAgainstErase) {
  MergeEngine engine;
  // Swap(0,2) vs Erase(1): transformed swap side arrives as moves.
  auto merged = engine.Merge(Operation::Swap(0, 2).At(0, 1),
                             Operation::Erase(1).At(0, 2));
  ASSERT_TRUE(merged.ok());
  Array left = {1, 2, 3}, right = {1, 2, 3};
  ASSERT_TRUE(Operation::Swap(0, 2).Apply(&left).ok());
  ASSERT_TRUE(ApplyAll(merged->right, &left).ok());
  ASSERT_TRUE(Operation::Erase(1).Apply(&right).ok());
  ASSERT_TRUE(ApplyAll(merged->left, &right).ok());
  EXPECT_EQ(left, right);
}

TEST(MergeTest, SwapMoveBugNonTermination) {
  // §5.1.3: merging ArraySwap with the ArrayMove spanning the same range
  // never terminates in the buggy implementation; the recursion budget
  // reports it (TLC died with a StackOverflowError).
  MergeConfig config;
  config.enable_swap_move_bug = true;
  MergeEngine buggy(config);
  auto merged = buggy.Merge(Operation::Move(0, 2).At(0, 1),
                            Operation::Swap(0, 2).At(0, 2));
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), common::StatusCode::kResourceExhausted);

  // The fixed rules terminate on the same input.
  MergeEngine fixed;
  EXPECT_TRUE(fixed.Merge(Operation::Move(0, 2).At(0, 1),
                          Operation::Swap(0, 2).At(0, 2))
                  .ok());

  // And the bug only bites that specific shape.
  EXPECT_TRUE(buggy.Merge(Operation::Move(0, 1).At(0, 1),
                          Operation::Swap(0, 2).At(0, 2))
                  .ok());
}

TEST(MergeTest, ListTransformRandomizedConvergence) {
  // Property: for random op LISTS built on diverged replicas, the rebase
  // converges both sides.
  MergeEngine engine;
  common::Rng rng(2024);
  for (int trial = 0; trial < 3000; ++trial) {
    int n = static_cast<int>(rng.Below(4));
    Array base;
    for (int i = 0; i < n; ++i) base.push_back(10 + i);
    Array sa = base, sb = base;
    OpList la, lb;
    auto grow = [&rng](Array* state, int cid, OpList* out) {
      int len = static_cast<int>(rng.Below(4));
      for (int i = 0; i < len; ++i) {
        int m = static_cast<int>(state->size());
        Operation op = Operation::Insert(0, 0);
        switch (rng.Below(5)) {
          case 0:
            if (m == 0) continue;
            op = Operation::Set(rng.Below(m), rng.Below(50));
            break;
          case 1:
            op = Operation::Insert(rng.Below(m + 1), rng.Below(50));
            break;
          case 2:
            if (m == 0) continue;
            op = Operation::Move(rng.Below(m), rng.Below(m));
            break;
          case 3:
            if (m == 0) continue;
            op = Operation::Erase(rng.Below(m));
            break;
          default:
            op = Operation::Clear();
            break;
        }
        Operation stamped = op.At(rng.Below(3), cid);
        if (stamped.Apply(state).ok()) out->push_back(stamped);
      }
    };
    grow(&sa, 1, &la);
    grow(&sb, 2, &lb);
    auto merged = engine.MergeLists(la, lb);
    ASSERT_TRUE(merged.ok());
    ASSERT_TRUE(ApplyAll(merged->right, &sa).ok());
    ASSERT_TRUE(ApplyAll(merged->left, &sb).ok());
    EXPECT_EQ(sa, sb) << "trial " << trial;
  }
}

TEST(CoverageTest, UniverseDeclared) {
  auto& registry = CoverageRegistry::Instance();
  // The fixed branch universe for the merge rules (the paper's analogue
  // counted 86 LCOV branches).
  EXPECT_EQ(registry.total_branches(), 61u);
}

TEST(CoverageTest, HitAndReset) {
  auto& registry = CoverageRegistry::Instance();
  registry.Reset();
  EXPECT_EQ(registry.covered_branches(), 0u);
  MergeEngine engine;
  ASSERT_TRUE(
      engine.Merge(Operation::Set(0, 1).At(0, 1), Operation::Set(0, 2).At(0, 2))
          .ok());
  EXPECT_GE(registry.covered_branches(), 1u);
  EXPECT_GT(registry.hits("SetSet_same_right_wins"), 0u);
  registry.Reset();
  EXPECT_EQ(registry.hits("SetSet_same_right_wins"), 0u);
}

TEST(CoverageTest, ExcludedBranchDoesNotCount) {
  auto& registry = CoverageRegistry::Instance();
  registry.Reset();
  MergeConfig config;
  config.enable_swap_move_bug = true;
  MergeEngine buggy(config);
  buggy.Merge(Operation::Move(0, 2).At(0, 1), Operation::Swap(0, 2).At(0, 2))
      .ok();
  // The buggy branch was hit but is excluded from the universe.
  EXPECT_GT(registry.hits("MoveSwap_buggy_rewrite"), 0u);
  for (const std::string& name : registry.UncoveredBranches()) {
    EXPECT_NE(name, "MoveSwap_buggy_rewrite");
  }
}

}  // namespace
}  // namespace xmodel::ot
