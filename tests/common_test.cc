#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fileio.h"
#include "common/hash.h"
#include "common/json.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/varint.h"

namespace xmodel::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad index");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad index");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(true, false), "truefalse");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \n"), "a b");
  EXPECT_EQ(StripWhitespace("\t\n "), "");
  EXPECT_EQ(StripWhitespace("ab"), "ab");
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ULL);
}

TEST(HashTest, MixAndCombineSpreadBits) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(Mix64(0), Mix64(1));
}

TEST(JsonTest, ScalarRoundTrip) {
  EXPECT_EQ(Json::Int(42).Dump(), "42");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, EscapesStrings) {
  EXPECT_EQ(Json::Str("a\"b\\c\nd").Dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::MakeObject();
  obj.Set("z", Json::Int(1));
  obj.Set("a", Json::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonTest, SetReplacesExistingKey) {
  Json obj = Json::MakeObject();
  obj.Set("k", Json::Int(1));
  obj.Set("k", Json::Int(9));
  EXPECT_EQ(obj.Dump(), "{\"k\":9}");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string text =
      R"({"a":1,"b":[true,null,"x"],"c":{"d":-5},"e":2.5})";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);
}

TEST(JsonTest, ParseUnicodeEscape) {
  auto parsed = Json::Parse(R"("Aé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "A\xc3\xa9");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("12 34").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("trve").ok());
}

TEST(JsonTest, FindMember) {
  auto parsed = Json::Parse(R"({"x":7})");
  ASSERT_TRUE(parsed.ok());
  ASSERT_NE(parsed->Find("x"), nullptr);
  EXPECT_EQ(parsed->Find("x")->int_value(), 7);
  EXPECT_EQ(parsed->Find("y"), nullptr);
}

TEST(JsonTest, Equality) {
  auto a = Json::Parse(R"({"x":[1,2]})");
  auto b = Json::Parse(R"({ "x" : [ 1 , 2 ] })");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(*a == *b);
}

}  // namespace
}  // namespace xmodel::common

namespace xmodel::common {
namespace {

// Random JSON generator for round-trip property testing.
Json RandomJson(Rng* rng, int depth) {
  switch (rng->Below(depth > 0 ? 6 : 4)) {
    case 0:
      return Json::Null();
    case 1:
      return Json::Bool(rng->Chance(50));
    case 2:
      return Json::Int(rng->Range(-100000, 100000));
    case 3: {
      std::string s;
      size_t len = rng->Below(8);
      for (size_t i = 0; i < len; ++i) {
        // Mix printable chars with escapes.
        const char* alphabet = "ab\"\\\n\tz 0";
        s.push_back(alphabet[rng->Below(9)]);
      }
      return Json::Str(std::move(s));
    }
    case 4: {
      Json arr = Json::MakeArray();
      size_t len = rng->Below(4);
      for (size_t i = 0; i < len; ++i) {
        arr.Append(RandomJson(rng, depth - 1));
      }
      return arr;
    }
    default: {
      Json obj = Json::MakeObject();
      size_t len = rng->Below(4);
      for (size_t i = 0; i < len; ++i) {
        obj.Set(StrCat("k", i), RandomJson(rng, depth - 1));
      }
      return obj;
    }
  }
}

TEST(JsonPropertyTest, DumpParseRoundTrips) {
  Rng rng(20260708);
  for (int i = 0; i < 2000; ++i) {
    Json value = RandomJson(&rng, 3);
    auto parsed = Json::Parse(value.Dump());
    ASSERT_TRUE(parsed.ok()) << value.Dump() << ": "
                             << parsed.status().ToString();
    EXPECT_TRUE(*parsed == value) << value.Dump();
  }
}

TEST(JsonPropertyTest, GarbagePrefixesRejectedOrConsistent) {
  // Parsing any PREFIX of a valid document either fails cleanly or (for a
  // prefix that happens to be complete) succeeds; it must never crash.
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    std::string text = RandomJson(&rng, 3).Dump();
    for (size_t cut = 0; cut < text.size(); ++cut) {
      auto parsed = Json::Parse(text.substr(0, cut));
      if (parsed.ok()) {
        EXPECT_EQ(parsed->Dump(), text.substr(0, cut));
      }
    }
  }
}

}  // namespace
}  // namespace xmodel::common

namespace xmodel::common {
namespace {

TEST(ClockTest, RealClockIsMonotonic) {
  MonotonicClock* clock = MonotonicClock::Real();
  int64_t a = clock->NowNanos();
  int64_t b = clock->NowNanos();
  EXPECT_GE(b, a);
  EXPECT_EQ(MonotonicClock::Real(), clock);  // Process-wide singleton.
}

TEST(ClockTest, FakeClockAdvancesOnlyWhenTold) {
  FakeMonotonicClock clock;
  EXPECT_EQ(clock.NowNanos(), 0);
  EXPECT_EQ(clock.NowNanos(), 0);
  clock.AdvanceNanos(5);
  clock.AdvanceMicros(2);
  clock.AdvanceMs(1);
  EXPECT_EQ(clock.NowNanos(), 5 + 2'000 + 1'000'000);
}

TEST(ClockTest, FakeClockAutoAdvancePerRead) {
  FakeMonotonicClock clock;
  clock.set_auto_advance_ns(10);
  EXPECT_EQ(clock.NowNanos(), 0);   // Read returns, then advances.
  EXPECT_EQ(clock.NowNanos(), 10);
  EXPECT_EQ(clock.NowNanos(), 20);
}

TEST(ClockTest, DerivedUnitsConvert) {
  FakeMonotonicClock clock;
  clock.AdvanceMs(1'500);
  EXPECT_EQ(clock.NowMicros(), 1'500'000);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1.5);
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16'383,
                            16'384,
                            (uint64_t{1} << 32) - 1,
                            uint64_t{1} << 32,
                            std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t v : cases) PutVarint64(v, &buf);
  size_t pos = 0;
  for (uint64_t v : cases) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, TruncationIsDetected) {
  std::string buf;
  PutVarint64(std::numeric_limits<uint64_t>::max(), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint64(std::string_view(buf.data(), cut), &pos, &v))
        << "cut=" << cut;
  }
}

TEST(VarintTest, OverflowingTenthByteRejected) {
  // Ten continuation bytes followed by a 10th byte > 1 would exceed 64
  // bits; the decoder must refuse rather than wrap.
  std::string buf(9, static_cast<char>(0x80));
  buf.push_back(0x02);
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(buf, &pos, &v));
}

TEST(VarintTest, SignedZigZagRoundTrip) {
  const int64_t cases[] = {0, -1, 1, -64, 63, -65,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  std::string buf;
  for (int64_t v : cases) PutVarintSigned(v, &buf);
  size_t pos = 0;
  for (int64_t v : cases) {
    int64_t got = 0;
    ASSERT_TRUE(GetVarintSigned(buf, &pos, &got));
    EXPECT_EQ(got, v);
  }
  // Small magnitudes stay short under zigzag.
  std::string small;
  PutVarintSigned(-1, &small);
  EXPECT_EQ(small.size(), 1u);
}

TEST(VarintTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(0x0123456789abcdefULL, &buf);
  EXPECT_EQ(buf.size(), 8u);
  size_t pos = 0;
  uint64_t v = 0;
  ASSERT_TRUE(GetFixed64(buf, &pos, &v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
  pos = 1;
  EXPECT_FALSE(GetFixed64(buf, &pos, &v));
}

TEST(FileIoTest, AtomicWriteThenRead) {
  const std::string dir = "fileio_test_dir/nested";
  ASSERT_TRUE(EnsureDir(dir).ok());
  const std::string path = dir + "/doc.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "first").ok());
  std::string got;
  ASSERT_TRUE(ReadFileToString(path, &got).ok());
  EXPECT_EQ(got, "first");
  // Replacement is atomic: the old content is fully replaced.
  WriteFileOptions durable;
  durable.durable = true;
  ASSERT_TRUE(WriteFileAtomic(path, "second", durable).ok());
  ASSERT_TRUE(ReadFileToString(path, &got).ok());
  EXPECT_EQ(got, "second");
  Result<uint64_t> size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);
  std::vector<std::string> names;
  ASSERT_TRUE(ListDirFiles(dir, &names).ok());
  ASSERT_EQ(names.size(), 1u);  // No leftover temp files.
  EXPECT_EQ(names[0], "doc.txt");
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());  // Idempotent.
  EXPECT_EQ(ReadFileToString(path, &got).code(), StatusCode::kNotFound);
}

TEST(FileIoTest, MissingFileIsNotFound) {
  std::string got;
  EXPECT_EQ(ReadFileToString("no_such_file_xyz", &got).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(FileSize("no_such_file_xyz").status().code(),
            StatusCode::kNotFound);
  std::vector<std::string> names;
  EXPECT_EQ(ListDirFiles("no_such_dir_xyz", &names).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace xmodel::common
