#include <gtest/gtest.h>

#include <vector>

#include "repl/lock_manager.h"

namespace xmodel::repl {
namespace {

const ResourceId kGlobal{ResourceLevel::kGlobal, ""};
const ResourceId kDb{ResourceLevel::kDatabase, "test"};
const ResourceId kColl{ResourceLevel::kCollection, "test.docs"};

TEST(LockManagerTest, CompatibilityMatrix) {
  using M = LockMode;
  // IS is compatible with everything but X.
  EXPECT_TRUE(LockManager::Compatible(M::kIntentShared, M::kIntentShared));
  EXPECT_TRUE(LockManager::Compatible(M::kIntentShared, M::kIntentExclusive));
  EXPECT_TRUE(LockManager::Compatible(M::kIntentShared, M::kShared));
  EXPECT_FALSE(LockManager::Compatible(M::kIntentShared, M::kExclusive));
  // IX conflicts with S and X.
  EXPECT_TRUE(LockManager::Compatible(M::kIntentExclusive, M::kIntentExclusive));
  EXPECT_FALSE(LockManager::Compatible(M::kIntentExclusive, M::kShared));
  EXPECT_FALSE(LockManager::Compatible(M::kIntentExclusive, M::kExclusive));
  // S conflicts with IX and X.
  EXPECT_TRUE(LockManager::Compatible(M::kShared, M::kShared));
  EXPECT_FALSE(LockManager::Compatible(M::kShared, M::kIntentExclusive));
  // X conflicts with everything.
  EXPECT_FALSE(LockManager::Compatible(M::kExclusive, M::kIntentShared));
  EXPECT_FALSE(LockManager::Compatible(M::kExclusive, M::kExclusive));
}

TEST(LockManagerTest, MatrixIsSymmetric) {
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(LockManager::Compatible(static_cast<LockMode>(a),
                                        static_cast<LockMode>(b)),
                LockManager::Compatible(static_cast<LockMode>(b),
                                        static_cast<LockMode>(a)))
          << a << "," << b;
    }
  }
}

TEST(LockManagerTest, HierarchyEnforced) {
  LockManager lm;
  // Database lock without global intent lock: rejected.
  EXPECT_EQ(lm.Acquire(1, kDb, LockMode::kIntentExclusive).code(),
            common::StatusCode::kInvalidArgument);
  // Collection lock without database intent lock: rejected.
  ASSERT_TRUE(lm.Acquire(1, kGlobal, LockMode::kIntentExclusive).ok());
  EXPECT_EQ(lm.Acquire(1, kColl, LockMode::kIntentExclusive).code(),
            common::StatusCode::kInvalidArgument);
  ASSERT_TRUE(lm.Acquire(1, kDb, LockMode::kIntentExclusive).ok());
  EXPECT_TRUE(lm.Acquire(1, kColl, LockMode::kIntentExclusive).ok());
}

TEST(LockManagerTest, SharedIntentWriteConflict) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kGlobal, LockMode::kIntentExclusive).ok());
  // A second writer can proceed concurrently at the intent level...
  EXPECT_TRUE(lm.Acquire(2, kGlobal, LockMode::kIntentExclusive).ok());
  // ...but a global S (e.g. backup) conflicts with IX holders.
  auto s = lm.Acquire(3, kGlobal, LockMode::kShared);
  EXPECT_EQ(s.code(), common::StatusCode::kFailedPrecondition);
  EXPECT_EQ(lm.conflicts(), 1u);
}

TEST(LockManagerTest, ExclusiveBlocksAll) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kGlobal, LockMode::kExclusive).ok());
  EXPECT_FALSE(lm.Acquire(2, kGlobal, LockMode::kIntentShared).ok());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Acquire(2, kGlobal, LockMode::kIntentShared).ok());
}

TEST(LockManagerTest, IdempotentReacquire) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kGlobal, LockMode::kIntentShared).ok());
  EXPECT_TRUE(lm.Acquire(1, kGlobal, LockMode::kIntentShared).ok());
  EXPECT_EQ(lm.NumHolders(kGlobal), 1u);
}

TEST(LockManagerTest, ReleaseDiscipline) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kGlobal, LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, kDb, LockMode::kIntentExclusive).ok());
  // Cannot release the global lock while the database lock is held.
  EXPECT_EQ(lm.Release(1, kGlobal).code(),
            common::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(lm.Release(1, kDb).ok());
  EXPECT_TRUE(lm.Release(1, kGlobal).ok());
  EXPECT_EQ(lm.Release(1, kGlobal).code(), common::StatusCode::kNotFound);
}

TEST(LockManagerTest, ReleaseAllLowestFirst) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kGlobal, LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, kDb, LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, kColl, LockMode::kExclusive).ok());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.HeldBy(1).empty());
}

TEST(LockManagerTest, EventObserverSeesAcquireAndRelease) {
  LockManager lm;
  std::vector<LockEvent> events;
  lm.SetEventObserver([&](const LockEvent& e) { events.push_back(e); });
  ASSERT_TRUE(lm.Acquire(7, kGlobal, LockMode::kIntentShared).ok());
  ASSERT_TRUE(lm.Release(7, kGlobal).ok());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, LockEvent::Type::kAcquire);
  EXPECT_EQ(events[0].opctx, 7);
  EXPECT_EQ(events[1].type, LockEvent::Type::kRelease);
  EXPECT_EQ(events[1].mode, LockMode::kIntentShared);
}

TEST(LockManagerTest, CollectionsInDifferentDatabasesIndependent) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, kGlobal, LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, kDb, LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(lm.Acquire(1, kColl, LockMode::kExclusive).ok());
  // A second context can lock a collection in another database.
  ResourceId other_db{ResourceLevel::kDatabase, "other"};
  ResourceId other_coll{ResourceLevel::kCollection, "other.docs"};
  ASSERT_TRUE(lm.Acquire(2, kGlobal, LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(lm.Acquire(2, other_db, LockMode::kIntentExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, other_coll, LockMode::kExclusive).ok());
  // But not the same collection.
  EXPECT_FALSE(lm.Acquire(2, kColl, LockMode::kIntentShared).ok());
}

TEST(LockManagerTest, NamesRoundTrip) {
  EXPECT_STREQ(LockModeName(LockMode::kIntentShared), "IS");
  EXPECT_STREQ(LockModeName(LockMode::kExclusive), "X");
  EXPECT_EQ(kColl.ToString(), "Collection(test.docs)");
  EXPECT_EQ(kGlobal.ToString(), "Global");
}

}  // namespace
}  // namespace xmodel::repl
