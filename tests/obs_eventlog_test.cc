#include "obs/eventlog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/strings.h"
#include "obs/watchdog.h"

namespace xmodel::obs {
namespace {

using common::FakeMonotonicClock;
using common::StrCat;

TEST(EventLogTest, EmitAndTailRoundTrip) {
  FakeMonotonicClock clock;
  EventLog log(/*capacity=*/16, &clock);
  clock.AdvanceMicros(42);
  log.Emit(EventSeverity::kInfo, "checker", "run.started",
           {{"workers", "2"}, {"actions", "3"}});

  std::vector<Event> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, 0u);
  EXPECT_EQ(tail[0].ts_us, 42);
  EXPECT_EQ(tail[0].severity, EventSeverity::kInfo);
  EXPECT_EQ(tail[0].subsystem, "checker");
  EXPECT_EQ(tail[0].name, "run.started");
  ASSERT_EQ(tail[0].fields.size(), 2u);
  EXPECT_EQ(tail[0].fields[0].first, "workers");
  EXPECT_EQ(tail[0].fields[0].second, "2");
  EXPECT_EQ(log.total_emitted(), 1u);
}

TEST(EventLogTest, RingOverflowKeepsNewest) {
  EventLog log(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    log.Emit(EventSeverity::kDebug, "test", StrCat("event", i));
  }
  EXPECT_EQ(log.total_emitted(), 20u);

  // Asking for more than the capacity returns the newest `capacity`
  // events, oldest first; the 12 overwritten ones are gone.
  std::vector<Event> tail = log.Tail(100);
  ASSERT_EQ(tail.size(), 8u);
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, 12 + i);
    EXPECT_EQ(tail[i].name, StrCat("event", 12 + i));
  }

  // A smaller tail is the newest slice of that.
  std::vector<Event> last3 = log.Tail(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3[0].seq, 17u);
  EXPECT_EQ(last3[2].seq, 19u);
}

TEST(EventLogTest, JsonlGolden) {
  FakeMonotonicClock clock;
  EventLog log(/*capacity=*/8, &clock);
  clock.AdvanceMicros(1500);
  log.Emit(EventSeverity::kInfo, "checker", "run.started",
           {{"workers", "2"}});
  clock.AdvanceMicros(250);
  log.Emit(EventSeverity::kError, "mbtc", "trace.mismatch",
           {{"failed_step", "7"}, {"states_explored", "91"}});

  const std::string expected =
      "{\"seq\":0,\"ts_us\":1500,\"severity\":\"info\","
      "\"subsystem\":\"checker\",\"event\":\"run.started\","
      "\"fields\":{\"workers\":\"2\"}}\n"
      "{\"seq\":1,\"ts_us\":1750,\"severity\":\"error\","
      "\"subsystem\":\"mbtc\",\"event\":\"trace.mismatch\","
      "\"fields\":{\"failed_step\":\"7\",\"states_explored\":\"91\"}}\n";
  EXPECT_EQ(EventLog::ToJsonl(log.Tail(10)), expected);
}

TEST(EventLogTest, SeverityNamesAreStable) {
  EXPECT_STREQ(EventSeverityName(EventSeverity::kDebug), "debug");
  EXPECT_STREQ(EventSeverityName(EventSeverity::kInfo), "info");
  EXPECT_STREQ(EventSeverityName(EventSeverity::kWarn), "warn");
  EXPECT_STREQ(EventSeverityName(EventSeverity::kError), "error");
}

TEST(EventLogTest, DisabledLogEmitsNothing) {
  EventLog log(/*capacity=*/8);
  log.set_enabled(false);
  log.Emit(EventSeverity::kInfo, "test", "dropped");
  EXPECT_EQ(log.total_emitted(), 0u);
  EXPECT_TRUE(log.Tail(10).empty());
  log.set_enabled(true);
  log.Emit(EventSeverity::kInfo, "test", "kept");
  EXPECT_EQ(log.total_emitted(), 1u);
}

TEST(EventLogTest, ClearResetsSequence) {
  EventLog log(/*capacity=*/8);
  log.Emit(EventSeverity::kInfo, "test", "a");
  log.Emit(EventSeverity::kInfo, "test", "b");
  log.Clear();
  EXPECT_EQ(log.total_emitted(), 0u);
  EXPECT_TRUE(log.Tail(10).empty());
  log.Emit(EventSeverity::kInfo, "test", "c");
  std::vector<Event> tail = log.Tail(10);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].seq, 0u);
}

// The MPMC hammer: four threads emit concurrently into a small ring while
// a reader Tails it. Run under TSan this exercises the slot-claim /
// per-slot-latch protocol; the invariants below hold regardless of
// interleaving.
TEST(EventLogTest, ConcurrentEmitHammer) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2'000;
  EventLog log(/*capacity=*/64);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit(EventSeverity::kDebug, StrCat("thread", t),
                 StrCat("emit", i), {{"i", StrCat(i)}});
      }
    });
  }
  // Concurrent readers must see only consistent records (skipping slots
  // mid-overwrite), never torn ones.
  std::thread reader([&log] {
    for (int i = 0; i < 200; ++i) {
      for (const Event& e : log.Tail(64)) {
        ASSERT_FALSE(e.subsystem.empty());
        ASSERT_FALSE(e.name.empty());
      }
    }
  });
  for (std::thread& t : threads) t.join();
  reader.join();

  EXPECT_EQ(log.total_emitted(),
            static_cast<uint64_t>(kThreads) * kPerThread);

  // After the storm settles, the tail is the newest ring-full, seqs
  // strictly increasing and all within the final window.
  std::vector<Event> tail = log.Tail(64);
  ASSERT_EQ(tail.size(), 64u);
  const uint64_t total = log.total_emitted();
  for (size_t i = 0; i < tail.size(); ++i) {
    EXPECT_GE(tail[i].seq, total - 64);
    EXPECT_LT(tail[i].seq, total);
    if (i > 0) {
      EXPECT_GT(tail[i].seq, tail[i - 1].seq);
    }
  }
}

TEST(EventLogTest, JsonlSinkWritesParseableLines) {
  const std::string path =
      StrCat(::testing::TempDir(), "/eventlog_sink_test.jsonl");
  std::remove(path.c_str());

  EventLog log(/*capacity=*/8);
  ASSERT_TRUE(log.OpenJsonlSink(path).ok());
  log.Emit(EventSeverity::kInfo, "repl", "election.won",
           {{"node", "1"}, {"term", "2"}});
  log.Emit(EventSeverity::kWarn, "repl", "rollback.performed",
           {{"node", "2"}, {"truncated_to", "3"}});
  log.CloseJsonlSink();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    auto parsed = common::Json::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
  }
  auto first = common::Json::Parse(lines[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Find("event")->string_value(), "election.won");
  EXPECT_EQ(first->Find("severity")->string_value(), "info");
  std::remove(path.c_str());
}

// The watchdog's one-shot stall episode: the first stalled Poll() emits
// obs/watchdog.stalled exactly once, a heartbeat emits the recovery event
// and re-arms, and a second stall counts as a new episode.
TEST(WatchdogTest, OneShotStallAndRecovery) {
  FakeMonotonicClock clock;
  EventLog log(/*capacity=*/16, &clock);
  Watchdog watchdog(/*stall_timeout_ms=*/1'000, &clock, &log);

  EXPECT_FALSE(watchdog.Poll());
  EXPECT_EQ(watchdog.stalls_observed(), 0u);

  clock.AdvanceMs(1'500);
  EXPECT_TRUE(watchdog.Poll());
  EXPECT_TRUE(watchdog.Poll());  // Still stalled; same episode.
  EXPECT_EQ(watchdog.stalls_observed(), 1u);
  EXPECT_GE(watchdog.ms_since_heartbeat(), 1'500);

  std::vector<Event> tail = log.Tail(16);
  int stalled_events = 0;
  for (const Event& e : tail) {
    if (e.name == "watchdog.stalled") ++stalled_events;
  }
  EXPECT_EQ(stalled_events, 1);

  watchdog.Heartbeat();
  EXPECT_FALSE(watchdog.Poll());
  tail = log.Tail(16);
  bool recovered = false;
  for (const Event& e : tail) {
    if (e.name == "watchdog.recovered") recovered = true;
  }
  EXPECT_TRUE(recovered);

  // A second episode is counted and logged again.
  clock.AdvanceMs(2'000);
  EXPECT_TRUE(watchdog.Poll());
  EXPECT_EQ(watchdog.stalls_observed(), 2u);
}

}  // namespace
}  // namespace xmodel::obs
