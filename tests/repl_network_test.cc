#include <gtest/gtest.h>

#include "repl/network.h"

namespace xmodel::repl {
namespace {

TEST(SimNetworkTest, FullyConnectedByDefault) {
  SimNetwork net(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      EXPECT_TRUE(net.CanCommunicate(a, b));
    }
  }
  EXPECT_TRUE(net.IsHealed());
}

TEST(SimNetworkTest, PartitionSeparatesGroups) {
  SimNetwork net(5);
  net.Partition({{0, 1}, {2, 3}});
  EXPECT_TRUE(net.CanCommunicate(0, 1));
  EXPECT_TRUE(net.CanCommunicate(2, 3));
  EXPECT_FALSE(net.CanCommunicate(0, 2));
  EXPECT_FALSE(net.CanCommunicate(1, 3));
  // Node 4 was not mentioned: it sits in the default group, alone.
  EXPECT_FALSE(net.CanCommunicate(4, 0));
  EXPECT_FALSE(net.CanCommunicate(4, 2));
  EXPECT_FALSE(net.IsHealed());
}

TEST(SimNetworkTest, IsolateAndHeal) {
  SimNetwork net(3);
  net.Isolate(1);
  EXPECT_FALSE(net.CanCommunicate(0, 1));
  EXPECT_TRUE(net.CanCommunicate(0, 2));
  net.Heal();
  EXPECT_TRUE(net.CanCommunicate(0, 1));
  EXPECT_TRUE(net.IsHealed());
}

TEST(SimNetworkTest, SelfCommunicationAlwaysWorks) {
  SimNetwork net(3);
  net.Isolate(2);
  EXPECT_TRUE(net.CanCommunicate(2, 2));
}

TEST(SimClockTest, MonotoneAdvance) {
  SimClock clock;
  int64_t t0 = clock.NowMs();
  clock.AdvanceMs(5);
  EXPECT_EQ(clock.NowMs(), t0 + 5);
}

}  // namespace
}  // namespace xmodel::repl
