#include <gtest/gtest.h>

#include "repl/oplog.h"

namespace xmodel::repl {
namespace {

OplogEntry Entry(int64_t term, int64_t index) {
  return OplogEntry{OpTime{term, index}, "w"};
}

TEST(OpTimeTest, NullAndOrdering) {
  EXPECT_TRUE(OpTime{}.IsNull());
  EXPECT_FALSE((OpTime{1, 1}).IsNull());
  EXPECT_LT((OpTime{1, 5}), (OpTime{2, 1}));  // Term-major.
  EXPECT_LT((OpTime{1, 1}), (OpTime{1, 2}));
  EXPECT_LE((OpTime{1, 1}), (OpTime{1, 1}));
  EXPECT_GT((OpTime{2, 1}), (OpTime{1, 9}));
  EXPECT_EQ(OpTime{}.ToString(), "null");
  EXPECT_EQ((OpTime{2, 3}).ToString(), "(t:2, i:3)");
}

TEST(OplogTest, AppendAndLastOpTime) {
  Oplog log;
  EXPECT_TRUE(log.empty());
  EXPECT_TRUE(log.LastOpTime().IsNull());
  log.Append(Entry(1, 1));
  log.Append(Entry(1, 2));
  log.Append(Entry(2, 3));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.LastOpTime(), (OpTime{2, 3}));
  EXPECT_EQ(log.Terms(), (std::vector<int64_t>{1, 1, 2}));
}

TEST(OplogTest, Contains) {
  Oplog log;
  log.Append(Entry(1, 1));
  log.Append(Entry(3, 2));
  EXPECT_TRUE(log.Contains(OpTime{1, 1}));
  EXPECT_TRUE(log.Contains(OpTime{3, 2}));
  EXPECT_FALSE(log.Contains(OpTime{2, 2}));  // Different term at index 2.
  EXPECT_FALSE(log.Contains(OpTime{1, 3}));  // Beyond the log.
  EXPECT_FALSE(log.Contains(OpTime{}));
}

TEST(OplogTest, CommonPoint) {
  Oplog a, b;
  a.Append(Entry(1, 1));
  a.Append(Entry(1, 2));
  a.Append(Entry(2, 3));
  b.Append(Entry(1, 1));
  b.Append(Entry(1, 2));
  b.Append(Entry(3, 3));
  EXPECT_EQ(a.CommonPointWith(b), 2);
  EXPECT_EQ(b.CommonPointWith(a), 2);

  Oplog empty;
  EXPECT_EQ(a.CommonPointWith(empty), 0);

  Oplog prefix;
  prefix.Append(Entry(1, 1));
  EXPECT_EQ(a.CommonPointWith(prefix), 1);
  EXPECT_TRUE(prefix.IsPrefixOf(a));
  EXPECT_FALSE(a.IsPrefixOf(prefix));
  EXPECT_FALSE(b.IsPrefixOf(a));
  EXPECT_TRUE(empty.IsPrefixOf(a));
}

TEST(OplogTest, TruncateAfter) {
  Oplog log;
  log.Append(Entry(1, 1));
  log.Append(Entry(1, 2));
  log.Append(Entry(2, 3));
  std::vector<OplogEntry> removed = log.TruncateAfter(1);
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].optime, (OpTime{1, 2}));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.TruncateAfter(5).empty());
}

TEST(OplogTest, EntriesAfter) {
  Oplog log;
  log.Append(Entry(1, 1));
  log.Append(Entry(1, 2));
  auto tail = log.EntriesAfter(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].optime, (OpTime{1, 2}));
  EXPECT_EQ(log.EntriesAfter(0).size(), 2u);
  EXPECT_TRUE(log.EntriesAfter(2).empty());
  EXPECT_EQ(log.EntriesAfter(-3).size(), 2u);
}

}  // namespace
}  // namespace xmodel::repl
