#include <gtest/gtest.h>

#include "common/rng.h"
#include "tlax/tla_text.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

// Generates a random Value of bounded depth.
Value RandomValue(common::Rng* rng, int depth) {
  int kind = static_cast<int>(rng->Below(depth > 0 ? 7 : 4));
  switch (kind) {
    case 0:
      return Value::Nil();
    case 1:
      return Value::Bool(rng->Chance(50));
    case 2:
      return Value::Int(rng->Range(-1000, 1000));
    case 3: {
      std::string s;
      size_t len = rng->Below(6);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng->Below(26)));
      }
      return Value::Str(std::move(s));
    }
    case 4: {
      std::vector<Value> elems;
      size_t len = rng->Below(4);
      for (size_t i = 0; i < len; ++i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::Seq(std::move(elems));
    }
    case 5: {
      std::vector<Value> elems;
      size_t len = rng->Below(4);
      for (size_t i = 0; i < len; ++i) {
        elems.push_back(RandomValue(rng, depth - 1));
      }
      return Value::SetOf(std::move(elems));
    }
    default: {
      Value::Fields fields;
      size_t len = rng->Below(4);
      for (size_t i = 0; i < len; ++i) {
        fields.emplace_back(std::string(1, static_cast<char>('a' + i)),
                            RandomValue(rng, depth - 1));
      }
      return Value::Record(std::move(fields));
    }
  }
}

struct PropertySeed {
  uint64_t seed;
};

class ValuePropertyTest : public ::testing::TestWithParam<PropertySeed> {};

TEST_P(ValuePropertyTest, TlaTextRoundTrips) {
  common::Rng rng(GetParam().seed);
  for (int i = 0; i < 500; ++i) {
    Value v = RandomValue(&rng, 3);
    auto parsed = ParseTlaValue(v.ToTla());
    ASSERT_TRUE(parsed.ok()) << v.ToTla() << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(*parsed, v) << v.ToTla();
    EXPECT_EQ(parsed->hash(), v.hash());
  }
}

TEST_P(ValuePropertyTest, CompareIsTotalOrder) {
  common::Rng rng(GetParam().seed + 1);
  std::vector<Value> values;
  for (int i = 0; i < 40; ++i) values.push_back(RandomValue(&rng, 2));
  for (const Value& a : values) {
    EXPECT_EQ(Value::Compare(a, a), 0);
    for (const Value& b : values) {
      int ab = Value::Compare(a, b);
      EXPECT_EQ(ab, -Value::Compare(b, a)) << a.ToTla() << " / " << b.ToTla();
      if (ab == 0) {
        EXPECT_EQ(a, b);
        EXPECT_EQ(a.hash(), b.hash());
      }
      for (const Value& c : values) {
        // Transitivity (spot check): a<=b and b<=c implies a<=c.
        if (ab <= 0 && Value::Compare(b, c) <= 0) {
          EXPECT_LE(Value::Compare(a, c), 0)
              << a.ToTla() << " / " << b.ToTla() << " / " << c.ToTla();
        }
      }
    }
  }
}

TEST_P(ValuePropertyTest, SetLaws) {
  common::Rng rng(GetParam().seed + 2);
  for (int i = 0; i < 200; ++i) {
    Value a = RandomValue(&rng, 1);
    Value b = RandomValue(&rng, 1);
    Value set = Value::SetOf({a, b, a});
    EXPECT_TRUE(set.SetContains(a));
    EXPECT_TRUE(set.SetContains(b));
    EXPECT_LE(set.size(), 2u);
    // Insert is idempotent.
    EXPECT_EQ(set.SetInsert(a), set);
    // Order of construction is irrelevant.
    EXPECT_EQ(Value::SetOf({b, a}), Value::SetOf({a, b}));
  }
}

TEST_P(ValuePropertyTest, FunctionalUpdatesPreserveOriginal) {
  common::Rng rng(GetParam().seed + 3);
  for (int i = 0; i < 200; ++i) {
    std::vector<Value> elems;
    for (int k = 0; k < 3; ++k) elems.push_back(RandomValue(&rng, 1));
    Value seq = Value::Seq(elems);
    Value replaced = seq.WithIndex1(2, Value::Int(-1));
    EXPECT_EQ(seq.at(1), elems[1]);  // Original untouched.
    EXPECT_EQ(replaced.at(1), Value::Int(-1));
    EXPECT_EQ(replaced.at(0), elems[0]);
    Value appended = seq.Append(Value::Int(7));
    EXPECT_EQ(seq.size(), 3u);
    EXPECT_EQ(appended.size(), 4u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValuePropertyTest,
                         ::testing::Values(PropertySeed{1}, PropertySeed{7},
                                           PropertySeed{42},
                                           PropertySeed{12345}),
                         [](const ::testing::TestParamInfo<PropertySeed>& i) {
                           return "seed" + std::to_string(i.param.seed);
                         });

}  // namespace
}  // namespace xmodel::tlax
