#include <gtest/gtest.h>

#include "common/rng.h"
#include "ot/db_sync.h"

namespace xmodel::ot {
namespace {

using DbOp = DbOperation;

Db SeedDb() {
  Db db;
  DbOp::CreateTable("tasks").Apply(&db).ok();
  DbOp::CreateObject("tasks", 1).Apply(&db).ok();
  DbOp::SetField("tasks", 1, "done", 0).Apply(&db).ok();
  DbOp::CreateList("tasks", 1, "tags").Apply(&db).ok();
  DbOp::ArrayOp("tasks", 1, "tags", Operation::Insert(0, 1)).Apply(&db).ok();
  DbOp::ArrayOp("tasks", 1, "tags", Operation::Insert(1, 2)).Apply(&db).ok();
  return db;
}

TEST(DbSyncTest, OfflineEditsConverge) {
  DbSyncSystem sync(SeedDb(), 3);
  ASSERT_TRUE(
      sync.ClientApply(0, DbOp::SetField("tasks", 1, "done", 1).At(0, 1))
          .ok());
  ASSERT_TRUE(sync.ClientApply(1, DbOp::ArrayOp("tasks", 1, "tags",
                                                Operation::Erase(0))
                                      .At(0, 2))
                  .ok());
  ASSERT_TRUE(sync.ClientApply(2, DbOp::CreateObject("tasks", 2).At(0, 3))
                  .ok());
  ASSERT_TRUE(sync.SyncAll().ok());
  EXPECT_TRUE(sync.AllConsistent());
  const Db& final_db = sync.server_state();
  EXPECT_EQ(final_db.tables.at("tasks").objects.size(), 2u);
  EXPECT_EQ(std::get<int64_t>(
                final_db.tables.at("tasks").objects.at(1).fields.at("done")),
            1);
  EXPECT_EQ(std::get<Array>(
                final_db.tables.at("tasks").objects.at(1).fields.at("tags")),
            (Array{2}));
}

TEST(DbSyncTest, DeletionShadowsConcurrentEdits) {
  DbSyncSystem sync(SeedDb(), 2);
  ASSERT_TRUE(sync.ClientApply(0, DbOp::EraseObject("tasks", 1).At(0, 1))
                  .ok());
  ASSERT_TRUE(
      sync.ClientApply(1, DbOp::SetField("tasks", 1, "done", 1).At(0, 2))
          .ok());
  ASSERT_TRUE(sync.SyncAll().ok());
  EXPECT_TRUE(sync.AllConsistent());
  EXPECT_EQ(sync.server_state().tables.at("tasks").objects.count(1), 0u);
}

TEST(DbSyncTest, CountersCommute) {
  DbSyncSystem sync(SeedDb(), 3);
  for (int c = 0; c < 3; ++c) {
    ASSERT_TRUE(
        sync.ClientApply(
                c, DbOp::AddInteger("tasks", 1, "hits", c + 1).At(0, c + 1))
            .ok());
  }
  ASSERT_TRUE(sync.SyncAll().ok());
  EXPECT_TRUE(sync.AllConsistent());
  EXPECT_EQ(std::get<int64_t>(sync.server_state()
                                  .tables.at("tasks")
                                  .objects.at(1)
                                  .fields.at("hits")),
            6);  // 1 + 2 + 3: increments merge without loss.
}

TEST(DbSyncTest, ScalarConflictLastWriteWins) {
  DbSyncSystem sync(SeedDb(), 2);
  ASSERT_TRUE(
      sync.ClientApply(0, DbOp::SetField("tasks", 1, "done", 7).At(5, 1))
          .ok());
  ASSERT_TRUE(
      sync.ClientApply(1, DbOp::SetField("tasks", 1, "done", 9).At(3, 2))
          .ok());
  ASSERT_TRUE(sync.SyncAll().ok());
  EXPECT_TRUE(sync.AllConsistent());
  // Client 0's write has the newer timestamp.
  EXPECT_EQ(std::get<int64_t>(sync.server_state()
                                  .tables.at("tasks")
                                  .objects.at(1)
                                  .fields.at("done")),
            7);
}

TEST(DbSyncTest, RandomizedConvergence) {
  common::Rng rng(77);
  for (int trial = 0; trial < 400; ++trial) {
    DbSyncSystem sync(SeedDb(), 3);
    for (int c = 0; c < 3; ++c) {
      int ops = 1 + static_cast<int>(rng.Below(3));
      for (int k = 0; k < ops; ++k) {
        DbOp op = DbOp::CreateTable("x");
        switch (rng.Below(8)) {
          case 0:
            op = DbOp::SetField("tasks", 1, "done", rng.Below(10));
            break;
          case 1:
            op = DbOp::AddInteger("tasks", 1, "hits", rng.Range(-3, 3));
            break;
          case 2:
            op = DbOp::CreateObject("tasks", rng.Below(4));
            break;
          case 3:
            op = DbOp::EraseObject("tasks", rng.Below(4));
            break;
          case 4: {
            const Db& state = sync.client_state(c);
            auto it = state.tables.at("tasks").objects.find(1);
            int64_t len = 0;
            if (it != state.tables.at("tasks").objects.end()) {
              auto field = it->second.fields.find("tags");
              if (field != it->second.fields.end()) {
                if (auto* arr = std::get_if<Array>(&field->second)) {
                  len = static_cast<int64_t>(arr->size());
                }
              }
            }
            op = DbOp::ArrayOp("tasks", 1, "tags",
                               Operation::Insert(rng.Below(len + 1),
                                                 rng.Below(50)));
            break;
          }
          case 5:
            op = DbOp::LinkObject("tasks", 1, "owner", rng.Below(4));
            break;
          case 6:
            op = DbOp::EraseField("tasks", 1, "done");
            break;
          default:
            op = DbOp::ClearObject("tasks", 1);
            break;
        }
        sync.ClientApply(c, op.At(rng.Below(4), c + 1)).ok();
      }
    }
    ASSERT_TRUE(sync.SyncAll().ok()) << "trial " << trial;
    EXPECT_TRUE(sync.AllConsistent()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace xmodel::ot
