#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "tlax/state.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

TEST(ValueTest, NilAndScalars) {
  EXPECT_TRUE(Value::Nil().is_nil());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-3).int_value(), -3);
  EXPECT_EQ(Value::Str("abc").string_value(), "abc");
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_NE(Value::Int(5), Value::Int(6));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_EQ(Value::Int(5).hash(), Value::Int(5).hash());
  EXPECT_EQ(Value::Seq({Value::Int(1), Value::Int(2)}),
            Value::Seq({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, SetNormalization) {
  Value a = Value::SetOf({Value::Int(2), Value::Int(1), Value::Int(2)});
  Value b = Value::SetOf({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.SetContains(Value::Int(1)));
  EXPECT_FALSE(a.SetContains(Value::Int(3)));
}

TEST(ValueTest, RecordFieldOrderIrrelevant) {
  Value a = Value::Record({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value b = Value::Record({{"y", Value::Int(2)}, {"x", Value::Int(1)}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.FieldOrDie("y").int_value(), 2);
  EXPECT_EQ(a.Field("z"), nullptr);
}

TEST(ValueTest, WithFieldReplaces) {
  Value a = Value::Record({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value b = a.WithField("x", Value::Int(9));
  EXPECT_EQ(b.FieldOrDie("x").int_value(), 9);
  EXPECT_EQ(b.FieldOrDie("y").int_value(), 2);
  EXPECT_EQ(a.FieldOrDie("x").int_value(), 1);  // Original untouched.
}

TEST(ValueTest, SeqOperations) {
  Value s = Value::Seq({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.Index1(1).int_value(), 1);
  EXPECT_EQ(s.at(2).int_value(), 3);

  Value appended = s.Append(Value::Int(4));
  EXPECT_EQ(appended.size(), 4u);
  EXPECT_EQ(s.size(), 3u);

  Value sub = s.SubSeq(2, 3);
  EXPECT_EQ(sub, Value::Seq({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(s.SubSeq(3, 2), Value::EmptySeq());
  EXPECT_EQ(s.SubSeq(4, 9), Value::EmptySeq());
  // TLA SubSeq clamps the upper bound.
  EXPECT_EQ(s.SubSeq(1, 100).size(), 3u);

  Value replaced = s.WithIndex1(2, Value::Int(7));
  EXPECT_EQ(replaced.Index1(2).int_value(), 7);

  Value cat = s.Concat(sub);
  EXPECT_EQ(cat.size(), 5u);
}

TEST(ValueTest, TotalOrderIsStrict) {
  std::vector<Value> values = {
      Value::Nil(),
      Value::Bool(false),
      Value::Bool(true),
      Value::Int(-1),
      Value::Int(3),
      Value::Str("a"),
      Value::Str("b"),
      Value::Seq({Value::Int(1)}),
      Value::SetOf({Value::Int(1)}),
      Value::Record({{"k", Value::Int(1)}}),
  };
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      int c = Value::Compare(values[i], values[j]);
      if (i == j) {
        EXPECT_EQ(c, 0) << i;
      } else {
        EXPECT_NE(c, 0) << i << " vs " << j;
        EXPECT_EQ(c, -Value::Compare(values[j], values[i]));
      }
    }
  }
}

TEST(ValueTest, ToTla) {
  EXPECT_EQ(Value::Nil().ToTla(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToTla(), "TRUE");
  EXPECT_EQ(Value::Int(-7).ToTla(), "-7");
  EXPECT_EQ(Value::Str("Leader").ToTla(), "\"Leader\"");
  EXPECT_EQ(Value::Seq({Value::Int(1), Value::Str("a")}).ToTla(),
            "<<1, \"a\">>");
  EXPECT_EQ(Value::SetOf({Value::Int(2), Value::Int(1)}).ToTla(), "{1, 2}");
  EXPECT_EQ(Value::Record({{"ndx", Value::Int(0)}}).ToTla(), "[ndx |-> 0]");
  EXPECT_EQ(Value::EmptySeq().ToTla(), "<<>>");
}

TEST(StateTest, FingerprintDistinguishesStates) {
  State a({Value::Int(1), Value::Int(2)});
  State b({Value::Int(2), Value::Int(1)});
  State c({Value::Int(1), Value::Int(2)});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
}

TEST(StateTest, WithReplacesOneVariable) {
  State a({Value::Int(1), Value::Int(2)});
  State b = a.With(1, Value::Int(9));
  EXPECT_EQ(b.var(0).int_value(), 1);
  EXPECT_EQ(b.var(1).int_value(), 9);
  EXPECT_EQ(a.var(1).int_value(), 2);
}

TEST(StateTest, WiderThanInlineBufferUsesHeapPath) {
  std::vector<Value> wide;
  for (int i = 0; i < 12; ++i) wide.push_back(Value::Int(i));
  ASSERT_GT(wide.size(), State::kInlineVars);
  State a(wide);
  EXPECT_EQ(a.num_vars(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(a.var(i).int_value(), i);

  State b = a.With(10, Value::Int(99));
  EXPECT_EQ(b.var(10).int_value(), 99);
  EXPECT_EQ(a.var(10).int_value(), 10);  // Original untouched.
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(b, State(std::vector<Value>{
                 Value::Int(0), Value::Int(1), Value::Int(2), Value::Int(3),
                 Value::Int(4), Value::Int(5), Value::Int(6), Value::Int(7),
                 Value::Int(8), Value::Int(9), Value::Int(99),
                 Value::Int(11)}));
}

TEST(StateTest, IncrementalFingerprintMatchesFromScratch) {
  // A chain of With() updates (O(1) incremental fingerprint maintenance)
  // must land on exactly the fingerprint a from-scratch construction of
  // the same variable vector computes.
  State s({Value::Int(0), Value::Str("seed"), Value::EmptySeq()});
  s = s.With(0, Value::Int(41));
  s = s.With(2, Value::Seq({Value::Int(1), Value::Int(2)}));
  s = s.With(0, Value::Int(42));
  State rebuilt({Value::Int(42), Value::Str("seed"),
                 Value::Seq({Value::Int(1), Value::Int(2)})});
  EXPECT_EQ(s.fingerprint(), rebuilt.fingerprint());
  EXPECT_EQ(s, rebuilt);
}

TEST(StateTest, VarsSpanSeesEveryVariable) {
  State s({Value::Int(7), Value::Str("x")});
  auto span = s.vars();
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].int_value(), 7);
  EXPECT_EQ(span[1].string_value(), "x");
}

TEST(ValueInternTest, SmallValuesAreInline) {
  EXPECT_TRUE(Value::Nil().is_inline());
  EXPECT_TRUE(Value::Bool(true).is_inline());
  EXPECT_TRUE(Value::Int(123456789).is_inline());
  EXPECT_TRUE(Value::Str("").is_inline());
  EXPECT_TRUE(Value::Str("exactly15bytes!").is_inline());  // == kSmallStrMax
  EXPECT_FALSE(Value::Str("sixteen bytes!!!").is_inline());
  EXPECT_FALSE(Value::EmptySeq().is_inline());
  EXPECT_EQ(Value::Int(5).interned_rep(), nullptr);
}

TEST(ValueInternTest, ShortAndLongStringsHashConsistently) {
  // A string's hash must not depend on its storage class, or set
  // normalization and state fingerprints would depend on string length.
  const std::string boundary(Value::kSmallStrMax, 'q');
  EXPECT_EQ(Value::Str(boundary).hash(),
            Value::Str(std::string_view(boundary)).hash());
  EXPECT_EQ(Value::Str(boundary), Value::Str(boundary));
  const std::string longer(Value::kSmallStrMax + 20, 'q');
  EXPECT_EQ(Value::Str(longer), Value::Str(longer));
  EXPECT_NE(Value::Str(boundary), Value::Str(longer));
}

TEST(ValueInternTest, StructurallyEqualCompositesShareOneRep) {
  Value a = Value::Seq({Value::Int(1), Value::Str("dedup-seq")});
  Value b = Value::Seq({Value::Int(1), Value::Str("dedup-seq")});
  ASSERT_NE(a.interned_rep(), nullptr);
  EXPECT_EQ(a.interned_rep(), b.interned_rep());

  Value r1 = Value::Record({{"k", a}, {"n", Value::Int(2)}});
  Value r2 = Value::Record({{"n", Value::Int(2)}, {"k", b}});
  EXPECT_EQ(r1.interned_rep(), r2.interned_rep());

  // Functional updates land on the canonical rep too.
  Value s1 = Value::SetOf({Value::Int(1), Value::Int(3)});
  Value s2 = Value::SetOf({Value::Int(1)}).SetInsert(Value::Int(3));
  EXPECT_EQ(s1.interned_rep(), s2.interned_rep());

  // Inserting an existing member returns the identical rep, not a copy.
  EXPECT_EQ(s1.SetInsert(Value::Int(3)).interned_rep(), s1.interned_rep());
}

TEST(ValueInternTest, StatsCountHitsMissesAndLive) {
  const Value::InternStats before = Value::GetInternStats();
  // Contents distinctive enough that no other test interned them.
  Value fresh = Value::Seq(
      {Value::Str("intern-stats-test-novel-element"), Value::Int(-777001)});
  const Value::InternStats after_miss = Value::GetInternStats();
  // The long string and the seq itself: at least two new reps.
  EXPECT_GE(after_miss.misses, before.misses + 2);
  EXPECT_EQ(after_miss.live, before.live + (after_miss.misses - before.misses));
  EXPECT_GT(after_miss.bytes, before.bytes);

  Value again = Value::Seq(
      {Value::Str("intern-stats-test-novel-element"), Value::Int(-777001)});
  const Value::InternStats after_hit = Value::GetInternStats();
  EXPECT_EQ(again.interned_rep(), fresh.interned_rep());
  EXPECT_EQ(after_hit.misses, after_miss.misses);  // No new reps.
  EXPECT_EQ(after_hit.live, after_miss.live);
  EXPECT_GE(after_hit.hits, after_miss.hits + 2);
}

TEST(ValueInternTest, HashCollisionFallsBackToStructuralCompare) {
  internal::ScopedWeakCompositeHashForTesting weak;
  // Under the weak regime every sequence hashes identically, so these two
  // collide in the intern table and in operator== — which must fall back
  // to a structural walk, keep them distinct, and still dedup true equals.
  Value a = Value::Seq({Value::Str("weak-hash-a"), Value::Int(1)});
  Value b = Value::Seq({Value::Str("weak-hash-b"), Value::Int(2)});
  ASSERT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, b);
  EXPECT_NE(a.interned_rep(), b.interned_rep());
  EXPECT_NE(Value::Compare(a, b), 0);

  Value a2 = Value::Seq({Value::Str("weak-hash-a"), Value::Int(1)});
  EXPECT_EQ(a2.interned_rep(), a.interned_rep());
  EXPECT_EQ(a2, a);

  // Sets of colliding elements still normalize correctly.
  Value set = Value::SetOf({b, a, b});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.SetContains(a));
  EXPECT_TRUE(set.SetContains(b));
}

TEST(ValueInternTest, MultiThreadInternHammer) {
  // Many threads intern the same composites concurrently; every thread
  // must resolve to the same canonical rep, with no torn stats. Runs
  // under the TSan CI job.
  constexpr int kThreads = 8;
  constexpr int kIters = 400;
  std::vector<const void*> first_rep(kThreads, nullptr);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &first_rep, &mismatches] {
      for (int i = 0; i < kIters; ++i) {
        Value shared = Value::Record(
            {{"hammer", Value::Int(i % 16)},
             {"payload", Value::Seq({Value::Str("intern-hammer-shared"),
                                     Value::Int(i % 16)})}});
        Value mine = Value::Seq(
            {Value::Str("intern-hammer-private"), Value::Int(t),
             Value::Int(i % 8)});
        if (i % 16 == 0) {
          if (first_rep[t] == nullptr) first_rep[t] = shared.interned_rep();
          if (shared.interned_rep() != first_rep[t]) mismatches.fetch_add(1);
        }
        if (mine.at(1).int_value() != t) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(first_rep[t], first_rep[0]) << "thread " << t;
  }
  const Value::InternStats stats = Value::GetInternStats();
  EXPECT_GE(stats.live, 1u);
  EXPECT_LE(stats.live, stats.misses);
}

}  // namespace
}  // namespace xmodel::tlax
