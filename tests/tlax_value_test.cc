#include <gtest/gtest.h>

#include "tlax/state.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

TEST(ValueTest, NilAndScalars) {
  EXPECT_TRUE(Value::Nil().is_nil());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int(-3).int_value(), -3);
  EXPECT_EQ(Value::Str("abc").string_value(), "abc");
}

TEST(ValueTest, EqualityAndHash) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_NE(Value::Int(5), Value::Int(6));
  EXPECT_NE(Value::Int(1), Value::Str("1"));
  EXPECT_EQ(Value::Int(5).hash(), Value::Int(5).hash());
  EXPECT_EQ(Value::Seq({Value::Int(1), Value::Int(2)}),
            Value::Seq({Value::Int(1), Value::Int(2)}));
}

TEST(ValueTest, SetNormalization) {
  Value a = Value::SetOf({Value::Int(2), Value::Int(1), Value::Int(2)});
  Value b = Value::SetOf({Value::Int(1), Value::Int(2)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.SetContains(Value::Int(1)));
  EXPECT_FALSE(a.SetContains(Value::Int(3)));
}

TEST(ValueTest, RecordFieldOrderIrrelevant) {
  Value a = Value::Record({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value b = Value::Record({{"y", Value::Int(2)}, {"x", Value::Int(1)}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.FieldOrDie("y").int_value(), 2);
  EXPECT_EQ(a.Field("z"), nullptr);
}

TEST(ValueTest, WithFieldReplaces) {
  Value a = Value::Record({{"x", Value::Int(1)}, {"y", Value::Int(2)}});
  Value b = a.WithField("x", Value::Int(9));
  EXPECT_EQ(b.FieldOrDie("x").int_value(), 9);
  EXPECT_EQ(b.FieldOrDie("y").int_value(), 2);
  EXPECT_EQ(a.FieldOrDie("x").int_value(), 1);  // Original untouched.
}

TEST(ValueTest, SeqOperations) {
  Value s = Value::Seq({Value::Int(1), Value::Int(2), Value::Int(3)});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.Index1(1).int_value(), 1);
  EXPECT_EQ(s.at(2).int_value(), 3);

  Value appended = s.Append(Value::Int(4));
  EXPECT_EQ(appended.size(), 4u);
  EXPECT_EQ(s.size(), 3u);

  Value sub = s.SubSeq(2, 3);
  EXPECT_EQ(sub, Value::Seq({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(s.SubSeq(3, 2), Value::EmptySeq());
  EXPECT_EQ(s.SubSeq(4, 9), Value::EmptySeq());
  // TLA SubSeq clamps the upper bound.
  EXPECT_EQ(s.SubSeq(1, 100).size(), 3u);

  Value replaced = s.WithIndex1(2, Value::Int(7));
  EXPECT_EQ(replaced.Index1(2).int_value(), 7);

  Value cat = s.Concat(sub);
  EXPECT_EQ(cat.size(), 5u);
}

TEST(ValueTest, TotalOrderIsStrict) {
  std::vector<Value> values = {
      Value::Nil(),
      Value::Bool(false),
      Value::Bool(true),
      Value::Int(-1),
      Value::Int(3),
      Value::Str("a"),
      Value::Str("b"),
      Value::Seq({Value::Int(1)}),
      Value::SetOf({Value::Int(1)}),
      Value::Record({{"k", Value::Int(1)}}),
  };
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = 0; j < values.size(); ++j) {
      int c = Value::Compare(values[i], values[j]);
      if (i == j) {
        EXPECT_EQ(c, 0) << i;
      } else {
        EXPECT_NE(c, 0) << i << " vs " << j;
        EXPECT_EQ(c, -Value::Compare(values[j], values[i]));
      }
    }
  }
}

TEST(ValueTest, ToTla) {
  EXPECT_EQ(Value::Nil().ToTla(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToTla(), "TRUE");
  EXPECT_EQ(Value::Int(-7).ToTla(), "-7");
  EXPECT_EQ(Value::Str("Leader").ToTla(), "\"Leader\"");
  EXPECT_EQ(Value::Seq({Value::Int(1), Value::Str("a")}).ToTla(),
            "<<1, \"a\">>");
  EXPECT_EQ(Value::SetOf({Value::Int(2), Value::Int(1)}).ToTla(), "{1, 2}");
  EXPECT_EQ(Value::Record({{"ndx", Value::Int(0)}}).ToTla(), "[ndx |-> 0]");
  EXPECT_EQ(Value::EmptySeq().ToTla(), "<<>>");
}

TEST(StateTest, FingerprintDistinguishesStates) {
  State a({Value::Int(1), Value::Int(2)});
  State b({Value::Int(2), Value::Int(1)});
  State c({Value::Int(1), Value::Int(2)});
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), c.fingerprint());
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
}

TEST(StateTest, WithReplacesOneVariable) {
  State a({Value::Int(1), Value::Int(2)});
  State b = a.With(1, Value::Int(9));
  EXPECT_EQ(b.var(0).int_value(), 1);
  EXPECT_EQ(b.var(1).int_value(), 9);
  EXPECT_EQ(a.var(1).int_value(), 2);
}

}  // namespace
}  // namespace xmodel::tlax
