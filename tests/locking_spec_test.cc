#include <gtest/gtest.h>

#include "repl/lock_manager.h"
#include "specs/locking_spec.h"
#include "tlax/checker.h"
#include "trace/lock_trace.h"

namespace xmodel::specs {
namespace {

TEST(LockingSpecTest, ModelChecksClean) {
  LockingSpec spec(LockingConfig{});
  auto result = tlax::ModelChecker().Check(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_FALSE(result.violation.has_value());
  EXPECT_GT(result.distinct_states, 100u);
}

TEST(LockingSpecTest, MoreContextsMoreStates) {
  LockingConfig two;
  two.num_contexts = 2;
  LockingConfig three;
  three.num_contexts = 3;
  auto r2 = tlax::ModelChecker().Check(LockingSpec(two));
  auto r3 = tlax::ModelChecker().Check(LockingSpec(three));
  EXPECT_GT(r3.distinct_states, r2.distinct_states);
}

TEST(LockingSpecTest, InvariantRejectsConflicts) {
  LockingSpec spec(LockingConfig{});
  // Two exclusive holders on the global resource.
  auto bad = LockingSpec::MakeState({{{1, "X"}, {2, "X"}}, {}, {}});
  EXPECT_FALSE(spec.invariants()[0].predicate(bad));
  auto good = LockingSpec::MakeState({{{1, "IX"}, {2, "IX"}}, {}, {}});
  EXPECT_TRUE(spec.invariants()[0].predicate(good));
}

TEST(LockingSpecTest, InvariantRejectsOrphanChildLocks) {
  LockingSpec spec(LockingConfig{});
  // A database lock with no covering global intent lock.
  auto bad = LockingSpec::MakeState({{}, {{1, "IX"}}, {}});
  EXPECT_FALSE(spec.invariants()[1].predicate(bad));
  auto good = LockingSpec::MakeState({{{1, "IX"}}, {{1, "IX"}}, {}});
  EXPECT_TRUE(spec.invariants()[1].predicate(good));
}

TEST(LockTraceTest, RealWorkloadTraceChecks) {
  repl::LockManager manager;
  trace::LockTraceRecorder recorder(2);
  recorder.Attach(&manager);

  repl::ResourceId global{repl::ResourceLevel::kGlobal, ""};
  repl::ResourceId db{repl::ResourceLevel::kDatabase, "test"};
  repl::ResourceId coll{repl::ResourceLevel::kCollection, "test.docs"};
  for (int64_t op = 0; op < 4; ++op) {
    ASSERT_TRUE(
        manager.Acquire(op, global, repl::LockMode::kIntentExclusive).ok());
    ASSERT_TRUE(
        manager.Acquire(op, db, repl::LockMode::kIntentExclusive).ok());
    ASSERT_TRUE(
        manager.Acquire(op, coll, repl::LockMode::kIntentExclusive).ok());
    manager.ReleaseAll(op);
  }
  EXPECT_EQ(recorder.events().size(), 24u);
  auto check = recorder.Check();
  EXPECT_TRUE(check.ok()) << check.status.ToString();
}

TEST(LockTraceTest, OverlappingContexts) {
  repl::LockManager manager;
  trace::LockTraceRecorder recorder(2);
  recorder.Attach(&manager);
  repl::ResourceId global{repl::ResourceLevel::kGlobal, ""};
  ASSERT_TRUE(manager.Acquire(7, global, repl::LockMode::kIntentShared).ok());
  ASSERT_TRUE(manager.Acquire(8, global, repl::LockMode::kIntentShared).ok());
  manager.ReleaseAll(7);
  manager.ReleaseAll(8);
  EXPECT_TRUE(recorder.Check().ok());
}

TEST(LockTraceTest, TooManyContextsRejected) {
  repl::LockManager manager;
  trace::LockTraceRecorder recorder(1);  // Spec models one context only.
  recorder.Attach(&manager);
  repl::ResourceId global{repl::ResourceLevel::kGlobal, ""};
  ASSERT_TRUE(manager.Acquire(1, global, repl::LockMode::kIntentShared).ok());
  ASSERT_TRUE(manager.Acquire(2, global, repl::LockMode::kIntentShared).ok());
  auto check = recorder.Check();
  EXPECT_FALSE(check.ok());
  EXPECT_EQ(check.status.code(), common::StatusCode::kResourceExhausted);
}

TEST(LockTraceTest, CorruptEventStreamRejected) {
  trace::LockTraceRecorder recorder(2);
  repl::LockManager manager;
  recorder.Attach(&manager);
  repl::ResourceId global{repl::ResourceLevel::kGlobal, ""};
  ASSERT_TRUE(manager.Acquire(1, global, repl::LockMode::kIntentShared).ok());
  // A forged double-release via a second recorder-visible manager call is
  // impossible through the API; instead check an empty trace passes.
  trace::LockTraceRecorder empty(2);
  EXPECT_TRUE(empty.Check().ok());
}

}  // namespace
}  // namespace xmodel::specs
