// Round-trip coverage for the binary Value/State codec that frontier
// spill segments and checkpoints use. The load-bearing property: a
// decoded State is structurally equal to the original AND recomputes the
// identical fingerprint — out-of-core determinism hangs on that.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tlax/state.h"
#include "tlax/state_codec.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

Value RoundTrip(const Value& v) {
  std::string buf;
  EncodeValue(v, &buf);
  size_t pos = 0;
  Value out;
  common::Status status = DecodeValue(buf, &pos, &out);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(pos, buf.size());
  return out;
}

TEST(StateCodecTest, ScalarsRoundTrip) {
  for (const Value& v :
       {Value::Nil(), Value::Bool(true), Value::Bool(false), Value::Int(0),
        Value::Int(-1), Value::Int(1'234'567'890'123), Value::Int(-77),
        Value::Str(""), Value::Str("short"),
        Value::Str(std::string(100, 'x'))}) {
    const Value got = RoundTrip(v);
    EXPECT_EQ(got, v) << v.ToTla();
    EXPECT_EQ(got.hash(), v.hash());
  }
}

TEST(StateCodecTest, CompositesRoundTripAndReintern) {
  const Value seq = Value::Seq({Value::Int(1), Value::Str("a"),
                                Value::Seq({Value::Bool(true)})});
  const Value set = Value::SetOf({Value::Int(3), Value::Int(1),
                                  Value::Int(2)});
  const Value rec = Value::Record(
      {{"y", set}, {"x", seq}, {"z", Value::Nil()}});
  for (const Value& v : {seq, set, rec}) {
    const Value got = RoundTrip(v);
    EXPECT_EQ(got, v) << v.ToTla();
    EXPECT_EQ(got.hash(), v.hash());
    // Decoding goes through the public builders, so structurally equal
    // composites share one interned rep with the original.
    EXPECT_EQ(got.interned_rep(), v.interned_rep());
  }
}

TEST(StateCodecTest, StateRoundTripPreservesFingerprint) {
  const State state(std::vector<Value>{
      Value::Int(42), Value::Str("leader"),
      Value::Seq({Value::Int(1), Value::Int(2)}),
      Value::Record({{"term", Value::Int(3)}, {"log", Value::EmptySeq()}})});
  std::string buf;
  EncodeState(state, &buf);
  size_t pos = 0;
  State out;
  common::Status status = DecodeState(buf, &pos, &out);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(out, state);
  EXPECT_EQ(out.fingerprint(), state.fingerprint());
}

TEST(StateCodecTest, EmptyStateRoundTrips) {
  const State state;
  std::string buf;
  EncodeState(state, &buf);
  size_t pos = 0;
  State out;
  ASSERT_TRUE(DecodeState(buf, &pos, &out).ok());
  EXPECT_EQ(out.num_vars(), 0u);
  EXPECT_EQ(out.fingerprint(), state.fingerprint());
}

TEST(StateCodecTest, TruncationIsCleanCorruption) {
  const State state(std::vector<Value>{
      Value::Seq({Value::Str("abcdefgh"), Value::Int(-5)}),
      Value::SetOf({Value::Int(9)})});
  std::string buf;
  EncodeState(state, &buf);
  // Every proper prefix must fail with kCorruption, never crash.
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    State out;
    common::Status status =
        DecodeState(std::string_view(buf.data(), cut), &pos, &out);
    EXPECT_EQ(status.code(), common::StatusCode::kCorruption)
        << "cut=" << cut;
  }
}

TEST(StateCodecTest, GarbageTagIsCleanCorruption) {
  std::string buf;
  buf.push_back(1);     // One variable...
  buf.push_back(0x7F);  // ...with an unknown tag.
  size_t pos = 0;
  State out;
  EXPECT_EQ(DecodeState(buf, &pos, &out).code(),
            common::StatusCode::kCorruption);
}

TEST(StateCodecTest, DeepNestingIsBounded) {
  // 100 nested sequences exceed the decoder's depth bound; it must
  // reject the input instead of recursing toward a stack overflow.
  std::string buf;
  for (int i = 0; i < 100; ++i) {
    buf.push_back(5);  // kWireSeq
    buf.push_back(1);  // one element
  }
  buf.push_back(0);  // innermost nil
  size_t pos = 0;
  Value out;
  EXPECT_EQ(DecodeValue(buf, &pos, &out).code(),
            common::StatusCode::kCorruption);
}

}  // namespace
}  // namespace xmodel::tlax
