#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.h"
#include "repl/rollback_fuzzer.h"
#include "repl/scenarios.h"
#include "trace/event_processor.h"
#include "trace/mbtc_pipeline.h"
#include "trace/trace_event.h"
#include "trace/trace_logger.h"

namespace xmodel::trace {
namespace {

using repl::OpTime;
using specs::RaftMongoConfig;
using specs::RaftMongoSpec;
using specs::RaftMongoVariant;

TEST(TraceEventTest, JsonRoundTrip) {
  TraceEvent e;
  e.timestamp_ms = 12345;
  e.node_id = 2;
  e.action = "ClientWrite";
  e.role = "Leader";
  e.term = 3;
  e.commit_point = OpTime{2, 7};
  e.oplog_terms = {1, 2, 3};
  e.oplog_from_stale_snapshot = true;

  auto parsed = TraceEvent::FromJsonLine(e.ToJsonLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->timestamp_ms, 12345);
  EXPECT_EQ(parsed->node_id, 2);
  EXPECT_EQ(parsed->action, "ClientWrite");
  EXPECT_EQ(*parsed->role, "Leader");
  EXPECT_EQ(*parsed->term, 3);
  EXPECT_EQ(*parsed->commit_point, (OpTime{2, 7}));
  EXPECT_EQ(*parsed->oplog_terms, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_TRUE(parsed->oplog_from_stale_snapshot);
}

TEST(TraceEventTest, NullCommitPointRoundTrip) {
  TraceEvent e;
  e.timestamp_ms = 1;
  e.node_id = 0;
  e.action = "Stepdown";
  e.commit_point = OpTime{};
  auto parsed = TraceEvent::FromJsonLine(e.ToJsonLine());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->commit_point.has_value());
  EXPECT_TRUE(parsed->commit_point->IsNull());
  EXPECT_FALSE(parsed->role.has_value());  // Partial event.
}

TEST(TraceEventTest, RejectsMalformedLines) {
  EXPECT_FALSE(TraceEvent::FromJsonLine("not json").ok());
  EXPECT_FALSE(TraceEvent::FromJsonLine("{}").ok());
  EXPECT_FALSE(TraceEvent::FromJsonLine(R"({"t":1,"node":0})").ok());
  EXPECT_FALSE(
      TraceEvent::FromJsonLine(R"({"t":1,"node":0,"action":"x","commitPoint":{"term":1}})")
          .ok());
}

TEST(MergeLogsTest, OrdersByTimestampAcrossNodes) {
  TraceEvent a;
  a.timestamp_ms = 5;
  a.node_id = 0;
  a.action = "A";
  TraceEvent b = a;
  b.timestamp_ms = 3;
  b.node_id = 1;
  b.action = "B";
  TraceEvent c = a;
  c.timestamp_ms = 9;
  c.node_id = 1;
  c.action = "C";

  auto merged = MergeLogs({{a.ToJsonLine()}, {b.ToJsonLine(), c.ToJsonLine()}});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 3u);
  EXPECT_EQ((*merged)[0].action, "B");
  EXPECT_EQ((*merged)[1].action, "A");
  EXPECT_EQ((*merged)[2].action, "C");
}

TEST(MergeLogsTest, RejectsDuplicateTimestamps) {
  TraceEvent a;
  a.timestamp_ms = 5;
  a.node_id = 0;
  a.action = "A";
  TraceEvent b = a;
  b.node_id = 1;
  auto merged = MergeLogs({{a.ToJsonLine()}, {b.ToJsonLine()}});
  EXPECT_FALSE(merged.ok());
}

TEST(TraceLoggerTest, DistinctMonotonicTimestamps) {
  repl::SimClock clock;
  TraceLogger logger(&clock);
  repl::ReplTraceEvent e;
  e.node_id = 0;
  e.action = repl::ReplAction::kClientWrite;
  e.role = "Leader";
  // Log several events without advancing the clock externally: the Figure 2
  // wait loop must still produce strictly increasing timestamps.
  for (int i = 0; i < 5; ++i) logger.OnTraceEvent(e);
  ASSERT_EQ(logger.events_logged(), 5u);
  auto merged = MergeLogs(logger.LogFiles(1));
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  for (size_t i = 1; i < merged->size(); ++i) {
    EXPECT_LT((*merged)[i - 1].timestamp_ms, (*merged)[i].timestamp_ms);
  }
}

TEST(TraceLoggerTest, PartialModeOmitsUnchangedVariables) {
  repl::SimClock clock;
  TraceLoggerOptions options;
  options.partial_state_logging = true;
  TraceLogger logger(&clock, options);

  repl::ReplTraceEvent e;
  e.node_id = 0;
  e.action = repl::ReplAction::kClientWrite;
  e.role = "Leader";
  e.term = 1;
  e.oplog_terms = {1};
  logger.OnTraceEvent(e);  // First event: everything logged.
  e.oplog_terms = {1, 1};
  logger.OnTraceEvent(e);  // Only the oplog changed.

  auto merged = MergeLogs(logger.LogFiles(1));
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 2u);
  EXPECT_TRUE((*merged)[0].role.has_value());
  EXPECT_FALSE((*merged)[1].role.has_value());
  EXPECT_FALSE((*merged)[1].term.has_value());
  ASSERT_TRUE((*merged)[1].oplog_terms.has_value());
  EXPECT_EQ((*merged)[1].oplog_terms->size(), 2u);
}

TEST(EventProcessorTest, Figure3RoleRules) {
  // The exact example from the paper's Figure 3: node 1 is leader in term
  // 1; a trace event from node 2 announcing leadership in term 2 demotes
  // node 1 in the combined state.
  EventProcessorOptions options;
  options.num_nodes = 3;
  EventProcessor processor(options);

  TraceEvent elect1;
  elect1.timestamp_ms = 1;
  elect1.node_id = 0;
  elect1.action = "BecomePrimaryByMagic";
  elect1.role = "Leader";
  elect1.term = 1;
  elect1.commit_point = OpTime{};
  elect1.oplog_terms = std::vector<int64_t>{};

  TraceEvent elect2 = elect1;
  elect2.timestamp_ms = 2;
  elect2.node_id = 1;
  elect2.term = 2;

  ProcessedTrace out = processor.Process({elect1, elect2});
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.states.size(), 3u);

  const tlax::State& last = out.states.back();
  EXPECT_EQ(last.var(RaftMongoSpec::kRole).at(0).string_value(), "Follower");
  EXPECT_EQ(last.var(RaftMongoSpec::kRole).at(1).string_value(), "Leader");
  EXPECT_EQ(last.var(RaftMongoSpec::kTerm).at(0).int_value(), 1);
  EXPECT_EQ(last.var(RaftMongoSpec::kTerm).at(1).int_value(), 2);
}

TEST(EventProcessorTest, LeaderToFollowerKeepsOthers) {
  EventProcessorOptions options;
  options.num_nodes = 3;
  EventProcessor processor(options);

  TraceEvent elect;
  elect.timestamp_ms = 1;
  elect.node_id = 0;
  elect.action = "BecomePrimaryByMagic";
  elect.role = "Leader";
  elect.term = 1;
  TraceEvent stepdown;
  stepdown.timestamp_ms = 2;
  stepdown.node_id = 0;
  stepdown.action = "Stepdown";
  stepdown.role = "Follower";
  stepdown.term = 1;

  ProcessedTrace out = processor.Process({elect, stepdown});
  ASSERT_TRUE(out.ok());
  const tlax::State& last = out.states.back();
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(last.var(RaftMongoSpec::kRole).at(n).string_value(),
              "Follower");
  }
}

TEST(EventProcessorTest, RejectsUnknownNode) {
  EventProcessorOptions options;
  options.num_nodes = 2;
  TraceEvent e;
  e.timestamp_ms = 1;
  e.node_id = 7;
  e.action = "ClientWrite";
  ProcessedTrace out = EventProcessor(options).Process({e});
  EXPECT_FALSE(out.ok());
}

TEST(EventProcessorTest, ImagePrefixRepairPersists) {
  // Node 1 initial-syncs and thereafter logs only the trailing window; the
  // processor must prepend the inferred prefix to every later event.
  EventProcessorOptions options;
  options.num_nodes = 2;
  EventProcessor processor(options);

  auto event = [](int64_t ts, int node, const std::string& action,
                  std::vector<int64_t> oplog) {
    TraceEvent e;
    e.timestamp_ms = ts;
    e.node_id = node;
    e.action = action;
    e.role = node == 0 ? "Leader" : "Follower";
    e.term = 1;
    e.commit_point = OpTime{};
    e.oplog_terms = std::move(oplog);
    return e;
  };

  std::vector<TraceEvent> events = {
      event(1, 0, "BecomePrimaryByMagic", {}),
      event(2, 0, "ClientWrite", {1}),
      event(3, 0, "ClientWrite", {1, 2}),      // A term-2 write (re-election
      event(4, 0, "ClientWrite", {1, 2, 2}),   // happened off-trace).
      // Node 1 initial-syncs, copying only the last 2 entries. The logged
      // log is a strict suffix (and not a prefix) of node 0's.
      event(5, 1, "AppendOplog", {2, 2}),
      // Later events from node 1 keep omitting the image prefix.
      event(6, 1, "AppendOplog", {2, 2}),
  };
  ProcessedTrace out = processor.Process(events);
  ASSERT_TRUE(out.ok());
  // After the initial-sync event, node 1's processed oplog is the full log.
  EXPECT_EQ(out.states[5].var(RaftMongoSpec::kOplog).at(1).size(), 3u);
  EXPECT_EQ(out.states[6].var(RaftMongoSpec::kOplog).at(1).size(), 3u);
}

RaftMongoSpec UnboundedSpec(int num_nodes) {
  RaftMongoConfig config;
  config.variant = RaftMongoVariant::kDetailed;
  config.num_nodes = num_nodes;
  config.max_term = 1'000'000;
  config.max_oplog_len = 1'000'000;
  return RaftMongoSpec(config);
}

MbtcReport RunScenarioThroughPipeline(const repl::Scenario& scenario,
                                      const RaftMongoSpec& spec) {
  repl::ReplicaSet rs(scenario.config);
  TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  auto run_status = scenario.run(rs);
  EXPECT_TRUE(run_status.ok()) << scenario.name << ": "
                               << run_status.ToString();
  MbtcPipelineOptions options;
  options.checker.allow_stuttering = true;
  MbtcPipeline pipeline(&spec, options);
  return pipeline.Run(logger.LogFiles(rs.num_nodes()));
}

TEST(MbtcPipelineTest, ConformingScenariosPass) {
  for (const repl::Scenario& scenario : repl::BaseScenarios()) {
    if (scenario.uses_arbiters || scenario.exhibits_two_leaders) continue;
    if (scenario.name == "initial_sync_quorum_bug") continue;
    RaftMongoSpec spec = UnboundedSpec(scenario.config.num_nodes);
    MbtcReport report = RunScenarioThroughPipeline(scenario, spec);
    EXPECT_TRUE(report.passed())
        << scenario.name << ": step " << report.check.failed_step << " — "
        << report.check.status.ToString();
    EXPECT_GT(report.num_events, 0u);
    EXPECT_EQ(report.num_states, report.num_events + 1);
    EXPECT_NE(report.trace_module.find("MODULE Trace"), std::string::npos);
  }
}

TEST(MbtcPipelineTest, QuorumBugScenarioViolatesSpec) {
  // The paper's central §4.2.2 result: the initial-sync quorum bug makes
  // the implementation's trace violate RaftMongo — the leader's commit
  // point regresses after the non-durable "committed" write is lost.
  const auto scenarios = repl::BaseScenarios();
  auto it = std::find_if(scenarios.begin(), scenarios.end(),
                         [](const repl::Scenario& s) {
                           return s.name == "initial_sync_quorum_bug";
                         });
  ASSERT_NE(it, scenarios.end());
  RaftMongoSpec spec = UnboundedSpec(it->config.num_nodes);
  MbtcReport report = RunScenarioThroughPipeline(*it, spec);
  EXPECT_FALSE(report.check.ok());
  EXPECT_GT(report.check.failed_step, 0u);
}

TEST(MbtcPipelineTest, QuorumBugFixedVsBuggyDurability) {
  // With the fixed quorum rule the same scenario never declares the
  // non-durable write committed, so nothing is lost. (Its trace still
  // cannot be checked — the initial-sync wipe itself is unexplainable by
  // the spec, which is why the paper chose avoidance, solution 2.)
  auto scenarios = repl::BaseScenarios();
  auto it = std::find_if(scenarios.begin(), scenarios.end(),
                         [](const repl::Scenario& s) {
                           return s.name == "initial_sync_quorum_bug";
                         });
  ASSERT_NE(it, scenarios.end());

  repl::Scenario buggy = *it;
  repl::ReplicaSet rs_buggy(buggy.config);
  ASSERT_TRUE(buggy.run(rs_buggy).ok());
  EXPECT_FALSE(rs_buggy.CommittedWritesDurable());

  repl::Scenario fixed = *it;
  fixed.config.count_initial_sync_in_quorum = false;
  repl::ReplicaSet rs_fixed(fixed.config);
  ASSERT_TRUE(fixed.run(rs_fixed).ok());
  EXPECT_TRUE(rs_fixed.CommittedWritesDurable());
}

TEST(MbtcPipelineTest, TwoLeadersScenarioViolatesSpec) {
  // The at-most-one-leader simplification rejects two-leader traces
  // (§4.2.2 "Two leaders"); the paper avoided such tests (solution 2).
  const auto scenarios = repl::BaseScenarios();
  auto it = std::find_if(scenarios.begin(), scenarios.end(),
                         [](const repl::Scenario& s) {
                           return s.exhibits_two_leaders;
                         });
  ASSERT_NE(it, scenarios.end());
  RaftMongoSpec spec = UnboundedSpec(it->config.num_nodes);
  MbtcReport report = RunScenarioThroughPipeline(*it, spec);
  EXPECT_FALSE(report.check.ok());
}

TEST(MbtcPipelineTest, ArbiterScenarioCrashesUnderTracing) {
  const auto scenarios = repl::BaseScenarios();
  auto it = std::find_if(scenarios.begin(), scenarios.end(),
                         [](const repl::Scenario& s) {
                           return s.uses_arbiters;
                         });
  ASSERT_NE(it, scenarios.end());

  // Without tracing the scenario passes…
  repl::ScenarioOutcome plain = repl::RunScenario(*it, nullptr);
  EXPECT_TRUE(plain.status.ok()) << plain.status.ToString();
  EXPECT_FALSE(plain.traced_arbiter_crash);

  // …with tracing the arbiter crashes (§4.2.2 "Arbiters").
  repl::SimClock clock;
  TraceLogger logger(&clock);
  repl::ScenarioOutcome traced = repl::RunScenario(*it, &logger);
  EXPECT_TRUE(traced.traced_arbiter_crash);
  EXPECT_FALSE(traced.status.ok());
}

TEST(MbtcPipelineTest, FuzzerTraceChecksWhenBugAvoided) {
  // rollback_fuzzer with the paper's solution-2 modification: all
  // followers fully synced before writes, no mid-run initial syncs.
  repl::RollbackFuzzerOptions options;
  options.seed = 7;
  options.num_steps = 600;
  options.sync_all_before_writes = true;
  options.avoid_unclean_restarts = true;
  options.avoid_two_leaders = true;
  options.config.count_initial_sync_in_quorum = true;  // Bug present but
                                                       // never triggered.
  repl::ReplicaSet rs(options.config);
  TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  repl::RollbackFuzzer fuzzer(options);
  repl::RollbackFuzzerReport fuzz_report = fuzzer.Run(&rs);
  EXPECT_TRUE(fuzz_report.committed_writes_durable);

  RaftMongoSpec spec = UnboundedSpec(options.config.num_nodes);
  MbtcPipelineOptions popts;
  popts.checker.allow_stuttering = true;
  MbtcPipeline pipeline(&spec, popts);
  MbtcReport report = pipeline.Run(logger.LogFiles(rs.num_nodes()));
  EXPECT_TRUE(report.passed())
      << "step " << report.check.failed_step << " of " << report.num_events
      << " — " << report.check.status.ToString();
  EXPECT_GT(report.num_events, 50u);
}

TEST(RollbackFuzzerTest, DeterministicPerSeed) {
  repl::RollbackFuzzerOptions options;
  options.seed = 42;
  options.num_steps = 200;
  repl::RollbackFuzzerReport a = repl::RollbackFuzzer(options).Run();
  repl::RollbackFuzzerReport b = repl::RollbackFuzzer(options).Run();
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.rollbacks, b.rollbacks);
  EXPECT_EQ(a.elections, b.elections);
}

TEST(RollbackFuzzerTest, ProducesRollbacks) {
  // Across a few seeds the fuzzer must actually exercise rollback.
  int64_t total_rollbacks = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    repl::RollbackFuzzerOptions options;
    options.seed = seed;
    options.num_steps = 400;
    options.sync_all_before_writes = true;
    repl::RollbackFuzzerReport report = repl::RollbackFuzzer(options).Run();
    total_rollbacks += report.rollbacks;
    EXPECT_TRUE(report.committed_writes_durable) << "seed " << seed;
  }
  EXPECT_GT(total_rollbacks, 0);
}

TEST(ScenarioLibraryTest, AllScenariosPassWithoutTracing) {
  int count = 0;
  for (const repl::Scenario& scenario : repl::AllScenarios()) {
    repl::ScenarioOutcome outcome = repl::RunScenario(scenario, nullptr);
    EXPECT_TRUE(outcome.status.ok())
        << scenario.name << ": " << outcome.status.ToString();
    ++count;
  }
  // The library is a few hundred distinct parameterized tests.
  EXPECT_GT(count, 350);
}

// One end-to-end run populates all three instrumented subsystems' metric
// families — the same guarantee `mbtc_check --scenario --metrics-out`
// gives on the command line.
TEST(MbtcPipelineTest, PublishesMetricFamiliesAcrossSubsystems) {
  auto& registry = obs::MetricsRegistry::Global();
  registry.Reset();

  auto scenarios = repl::BaseScenarios();
  auto it = std::find_if(scenarios.begin(), scenarios.end(),
                         [](const repl::Scenario& s) {
                           return s.name == "elect_and_write";
                         });
  ASSERT_NE(it, scenarios.end());
  RaftMongoSpec spec = UnboundedSpec(it->config.num_nodes);
  MbtcReport report = RunScenarioThroughPipeline(*it, spec);
  ASSERT_TRUE(report.passed());

  obs::RegistrySnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.HasFamily("checker."));  // Trace checker metrics.
  EXPECT_TRUE(snap.HasFamily("repl."));     // Replica-set + logger metrics.
  EXPECT_TRUE(snap.HasFamily("mbtc."));     // Pipeline metrics.

  EXPECT_EQ(snap.Find("mbtc.runs.completed")->value, 1.0);
  EXPECT_EQ(snap.Find("mbtc.events.ingested")->value,
            static_cast<double>(report.num_events));
  EXPECT_EQ(snap.Find("mbtc.states.mapped")->value,
            static_cast<double>(report.num_states));
  EXPECT_GE(snap.Find("repl.events.logged")->value,
            static_cast<double>(report.num_events));
  EXPECT_TRUE(snap.HasFamily("repl.node0.events.logged"));
  EXPECT_GE(snap.Find("checker.trace.steps.checked")->value, 1.0);

  // Per-phase latency histograms observed exactly one run each.
  for (const char* phase : {"mbtc.phase.parse.ms", "mbtc.phase.map.ms",
                            "mbtc.phase.check.ms"}) {
    const obs::MetricSnapshot* h = snap.Find(phase);
    ASSERT_NE(h, nullptr) << phase;
    EXPECT_EQ(h->kind, obs::MetricKind::kHistogram);
    EXPECT_EQ(h->count, 1u) << phase;
  }
  registry.Reset();
}

}  // namespace
}  // namespace xmodel::trace
