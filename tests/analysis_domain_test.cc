// Tests for the abstract-domain analysis: the per-variable value lattice
// (finite set -> interval -> top with widening), the InferDomains probe,
// the static state-space budget it yields, and the dead-spec diagnostics
// layered on top.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/domain.h"
#include "analysis/spec_registry.h"
#include "specs/locking_spec.h"
#include "specs/raft_mongo_spec.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"
#include "tlax/spec.h"
#include "tlax/value.h"

namespace xmodel::analysis {
namespace {

using tlax::Value;

TEST(AbstractValueTest, FiniteSetCountsDistinctValues) {
  AbstractValue av;
  EXPECT_EQ(av.form(), AbstractValue::Form::kBottom);
  EXPECT_EQ(av.Cardinality(), 0);
  av.Join(Value::Int(1));
  av.Join(Value::Int(7));
  av.Join(Value::Int(1));  // Duplicate: no growth.
  EXPECT_EQ(av.form(), AbstractValue::Form::kFiniteSet);
  EXPECT_EQ(av.Cardinality(), 2);
  EXPECT_FALSE(av.top());
}

TEST(AbstractValueTest, IntOverflowCollapsesToInterval) {
  AbstractValue av(/*finite_set_cap=*/4, /*max_widenings=*/16);
  for (int64_t i = 0; i <= 4; ++i) av.Join(Value::Int(i * 10));
  EXPECT_EQ(av.form(), AbstractValue::Form::kInterval);
  EXPECT_EQ(av.interval_lo(), 0);
  EXPECT_EQ(av.interval_hi(), 40);
  EXPECT_EQ(av.Cardinality(), 41);
  // Joins inside the interval do not widen.
  av.Join(Value::Int(25));
  EXPECT_EQ(av.Cardinality(), 41);
}

TEST(AbstractValueTest, RepeatedBoundExtensionWidensToTop) {
  AbstractValue av(/*finite_set_cap=*/2, /*max_widenings=*/3);
  for (int64_t i = 0; i < 32; ++i) av.Join(Value::Int(i));
  // Caps at 2 values, collapses to an interval, and after 3 more
  // bound-extending joins gives up: the variable has no stable bound.
  EXPECT_TRUE(av.top());
  EXPECT_TRUE(std::isinf(av.Cardinality()));
}

TEST(AbstractValueTest, NonIntValuesNeverFormIntervals) {
  AbstractValue av(/*finite_set_cap=*/2, /*max_widenings=*/16);
  av.Join(Value::Str("a"));
  av.Join(Value::Str("b"));
  EXPECT_EQ(av.form(), AbstractValue::Form::kFiniteSet);
  av.Join(Value::Str("c"));  // Overflows a set with no int ordering.
  EXPECT_TRUE(av.top());
}

TEST(AbstractValueTest, NonIntJoinedIntoIntervalGoesToTop) {
  AbstractValue av(/*finite_set_cap=*/2, /*max_widenings=*/16);
  av.Join(Value::Int(1));
  av.Join(Value::Int(2));
  av.Join(Value::Int(3));
  ASSERT_EQ(av.form(), AbstractValue::Form::kInterval);
  av.Join(Value::Str("oops"));
  EXPECT_TRUE(av.top());
}

TEST(InferDomainsTest, CounterDomainsAreExactAndBudgetCoversSpace) {
  specs::CounterSpec spec(3);
  SpecDomains domains = InferDomains(spec);
  ASSERT_TRUE(domains.exhaustive);
  ASSERT_EQ(domains.vars.size(), 2u);
  EXPECT_EQ(domains.vars[0].Cardinality(), 4);  // x in 0..3
  EXPECT_EQ(domains.vars[1].Cardinality(), 4);  // y in 0..3
  EXPECT_TRUE(domains.UnboundedVars().empty());

  tlax::CheckResult result = tlax::ModelChecker().Check(spec);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GE(domains.StateBound(), static_cast<double>(result.distinct_states));
  EXPECT_TRUE(LintDomains(spec, domains).empty());
}

TEST(InferDomainsTest, WriteImagesTrackPerActionStores) {
  specs::CounterSpec spec(3);
  SpecDomains domains = InferDomains(spec);
  ASSERT_EQ(domains.actions.size(), 2u);
  // IncrementX writes only x; its y-image stays bottom (and vice versa).
  EXPECT_GT(domains.actions[0].write_image[0].Cardinality(), 0);
  EXPECT_EQ(domains.actions[0].write_image[1].Cardinality(), 0);
  EXPECT_EQ(domains.actions[1].write_image[0].Cardinality(), 0);
  EXPECT_GT(domains.actions[1].write_image[1].Cardinality(), 0);
}

TEST(InferDomainsTest, RegisteredSpecBudgetsCoverCheckerDistinct) {
  // The acceptance bar for the static budget: on every registered spec
  // whose probe exhausts the reachable region, the budget must be a true
  // upper bound for what the model checker actually visits.
  for (const RegisteredSpec& entry : RegisteredSpecs()) {
    auto spec = entry.make();
    SpecDomains domains = InferDomains(*spec);
    ASSERT_TRUE(domains.exhaustive) << entry.name;
    EXPECT_TRUE(domains.UnboundedVars().empty()) << entry.name;

    tlax::CheckerOptions options;
    options.max_distinct_states = 1 << 20;
    tlax::CheckResult result = tlax::ModelChecker(options).Check(*spec);
    ASSERT_TRUE(result.status.ok()) << entry.name;
    EXPECT_GE(domains.StateBound(),
              static_cast<double>(result.distinct_states))
        << entry.name;
    // Declared domains on the real specs must survive the cross-check.
    for (const Diagnostic& d : LintDomains(*spec, domains)) {
      EXPECT_LT(d.severity, Severity::kError) << entry.name << ": "
                                              << d.ToText();
    }
  }
}

TEST(InferDomainsTest, UnboundedFixtureWidensToTopAndWarns) {
  auto spec = MakeUnboundedFixtureSpec();
  DomainOptions options;
  options.max_samples = 5000;
  options.finite_set_cap = 64;
  options.max_widenings = 8;
  SpecDomains domains = InferDomains(*spec, options);
  EXPECT_FALSE(domains.exhaustive);
  EXPECT_TRUE(domains.vars[0].top()) << "n must widen to top";
  EXPECT_FALSE(domains.vars[1].top()) << "phase stays {0, 1}";
  EXPECT_TRUE(std::isinf(domains.StateBound()));

  std::vector<Diagnostic> diags = LintDomains(*spec, domains);
  bool flagged = false;
  for (const Diagnostic& d : diags) {
    if (d.code == "unbounded-variable" && d.location == "n") {
      flagged = true;
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_NE(d.message.find("WithinConstraint"), std::string::npos)
          << "the diagnostic must point at the missing constraint";
    }
    EXPECT_NE(d.location, "phase") << "phase is bounded: " << d.ToText();
  }
  EXPECT_TRUE(flagged);
}

// A declared domain smaller than what the exhaustive probe observes is a
// lie about the state space and must be an error.
class UnderdeclaredSpec : public tlax::Spec {
 public:
  UnderdeclaredSpec() : variables_{"x"} {
    actions_.push_back(tlax::Action{
        "Step",
        [](const tlax::State& s, std::vector<tlax::State>* out) {
          if (s.var(0).int_value() < 2) {
            out->push_back(s.With(0, Value::Int(s.var(0).int_value() + 1)));
          }
        },
        tlax::Footprint{{"x"}, {"x"}}});
    invariants_.push_back(tlax::Invariant{
        "XSmall", [](const tlax::State& s) { return s.var(0).int_value() < 9; },
        std::vector<std::string>{"x"}});
  }
  std::string name() const override { return "Underdeclared"; }
  const std::vector<std::string>& variables() const override {
    return variables_;
  }
  std::vector<tlax::State> InitialStates() const override {
    return {tlax::State({Value::Int(0)})};
  }
  const std::vector<tlax::Action>& actions() const override {
    return actions_;
  }
  const std::vector<tlax::Invariant>& invariants() const override {
    return invariants_;
  }
  std::vector<tlax::DomainDecl> DeclaredDomains() const override {
    return {{"x", 2}, {"nope", 5}};  // x actually takes 3 values.
  }

 private:
  std::vector<std::string> variables_;
  std::vector<tlax::Action> actions_;
  std::vector<tlax::Invariant> invariants_;
};

TEST(LintDomainsTest, UnderdeclaredDomainAndUnknownVarAreErrors) {
  UnderdeclaredSpec spec;
  SpecDomains domains = InferDomains(spec);
  ASSERT_TRUE(domains.exhaustive);
  ASSERT_EQ(domains.unresolved, std::vector<std::string>{"nope"});

  bool exceeds = false, unresolved = false;
  for (const Diagnostic& d : LintDomains(spec, domains)) {
    if (d.code == "domain-exceeds-declaration" && d.location == "x") {
      exceeds = true;
      EXPECT_EQ(d.severity, Severity::kError);
    }
    if (d.code == "unresolved-domain-var" && d.location == "nope") {
      unresolved = true;
      EXPECT_EQ(d.severity, Severity::kError);
    }
  }
  EXPECT_TRUE(exceeds);
  EXPECT_TRUE(unresolved);
  // The exact observed count still wins over the understated declaration:
  // the budget must not shrink below the true space.
  EXPECT_GE(domains.StateBound(), 3.0);
}

TEST(InferDomainsTest, DeclaredSizesBoundTruncatedProbes) {
  // When the probe cannot exhaust the space, only declarations can bound
  // the budget — observation alone proves nothing beyond what it saw.
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kAbstract;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec spec(config);

  DomainOptions options;
  options.max_samples = 50;  // Far below the reachable space.
  SpecDomains domains = InferDomains(spec, options);
  ASSERT_FALSE(domains.exhaustive);
  // Every variable carries a declaration, so the budget stays finite.
  EXPECT_TRUE(domains.UnboundedVars().empty());
  EXPECT_FALSE(std::isinf(domains.StateBound()));

  // And the declared product covers the real (exhaustively probed) space.
  SpecDomains full = InferDomains(spec);
  ASSERT_TRUE(full.exhaustive);
  EXPECT_GE(domains.StateBound(), static_cast<double>(full.joined_states));
}

}  // namespace
}  // namespace xmodel::analysis
