#include <gtest/gtest.h>

#include "specs/raft_mongo_spec.h"
#include "tlax/checker.h"
#include "tlax/liveness.h"
#include "tlax/trace_check.h"

namespace xmodel::specs {
namespace {

using tlax::CheckerOptions;
using tlax::CheckResult;
using tlax::ModelChecker;
using tlax::State;
using tlax::TraceState;
using tlax::Value;

RaftMongoConfig SmallConfig(RaftMongoVariant variant) {
  RaftMongoConfig config;
  config.variant = variant;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  return config;
}

TEST(RaftMongoSpecTest, NamesAndVariables) {
  RaftMongoSpec abstract(SmallConfig(RaftMongoVariant::kAbstract));
  RaftMongoSpec detailed(SmallConfig(RaftMongoVariant::kDetailed));
  EXPECT_EQ(abstract.name(), "RaftMongoAbstract");
  EXPECT_EQ(detailed.name(), "RaftMongoDetailed");
  EXPECT_EQ(abstract.variables(),
            (std::vector<std::string>{"role", "term", "commitPoint",
                                      "oplog", "votedTerm"}));
  // The abstract spec has fewer actions (no per-node term gossip).
  EXPECT_LT(abstract.actions().size(), detailed.actions().size());
}

TEST(RaftMongoSpecTest, InitialStateAllFollowers) {
  RaftMongoSpec spec(SmallConfig(RaftMongoVariant::kDetailed));
  auto inits = spec.InitialStates();
  ASSERT_EQ(inits.size(), 1u);
  const State& init = inits[0];
  for (int n = 0; n < 3; ++n) {
    EXPECT_EQ(init.var(RaftMongoSpec::kRole).at(n).string_value(),
              "Follower");
    EXPECT_EQ(init.var(RaftMongoSpec::kTerm).at(n).int_value(), 0);
    EXPECT_TRUE(init.var(RaftMongoSpec::kCommitPoint).at(n).is_nil());
    EXPECT_EQ(init.var(RaftMongoSpec::kOplog).at(n).size(), 0u);
  }
}

TEST(RaftMongoSpecTest, BothVariantsSatisfySafety) {
  for (auto variant :
       {RaftMongoVariant::kAbstract, RaftMongoVariant::kDetailed}) {
    RaftMongoSpec spec(SmallConfig(variant));
    CheckResult result = ModelChecker().Check(spec);
    ASSERT_TRUE(result.status.ok()) << spec.name();
    EXPECT_FALSE(result.violation.has_value())
        << spec.name() << ": " << (result.violation
                                       ? result.violation->kind
                                       : "");
    EXPECT_GT(result.distinct_states, 100u);
  }
}

TEST(RaftMongoSpecTest, DetailedSpecHasLargerStateSpace) {
  // The paper's E1 claim in miniature: rewriting the spec for MBTC blew up
  // the state space (42,034 -> 371,368 at full config).
  RaftMongoSpec abstract(SmallConfig(RaftMongoVariant::kAbstract));
  RaftMongoSpec detailed(SmallConfig(RaftMongoVariant::kDetailed));
  CheckResult ra = ModelChecker().Check(abstract);
  CheckResult rd = ModelChecker().Check(detailed);
  EXPECT_GT(rd.distinct_states, ra.distinct_states);
}

TEST(RaftMongoSpecTest, CommitPointEventuallyPropagated) {
  // The spec's temporal property: once a write commits anywhere, a state
  // where every node knows the newest commit point remains reachable.
  RaftMongoConfig config = SmallConfig(RaftMongoVariant::kDetailed);
  config.max_term = 1;  // Keep the graph small for the test.
  RaftMongoSpec spec(config);
  CheckerOptions options;
  options.record_graph = true;
  CheckResult result = ModelChecker(options).Check(spec);
  ASSERT_TRUE(result.status.ok());
  auto lt = tlax::CheckAlwaysReachable(*result.graph, SomeNodeCommitted,
                                       AllNodesShareNewestCommitPoint);
  EXPECT_TRUE(lt.holds) << lt.message;
}

TEST(RaftMongoSpecTest, MakeStateRoundTrip) {
  State s = RaftMongoSpec::MakeState({"Leader", "Follower", "Follower"},
                                     {2, 2, 1},
                                     {{2, 1}, {0, 0}, {0, 0}},
                                     {{1, 2}, {1}, {}});
  EXPECT_EQ(s.var(RaftMongoSpec::kRole).at(0).string_value(), "Leader");
  EXPECT_EQ(s.var(RaftMongoSpec::kTerm).at(2).int_value(), 1);
  const Value& cp0 = s.var(RaftMongoSpec::kCommitPoint).at(0);
  EXPECT_EQ(cp0.FieldOrDie("term").int_value(), 2);
  EXPECT_EQ(cp0.FieldOrDie("index").int_value(), 1);
  EXPECT_TRUE(s.var(RaftMongoSpec::kCommitPoint).at(1).is_nil());
  EXPECT_EQ(s.var(RaftMongoSpec::kOplog).at(0).size(), 2u);
}

TEST(RaftMongoSpecTest, InvariantRejectsMinorityCommit) {
  RaftMongoSpec spec(SmallConfig(RaftMongoVariant::kDetailed));
  // Node 0's commit point names an entry only it holds.
  State bad = RaftMongoSpec::MakeState({"Leader", "Follower", "Follower"},
                                       {1, 1, 1},
                                       {{1, 1}, {0, 0}, {0, 0}},
                                       {{1}, {}, {}});
  EXPECT_FALSE(spec.invariants()[0].predicate(bad));
  // With a majority holding the entry it is fine.
  State good = RaftMongoSpec::MakeState({"Leader", "Follower", "Follower"},
                                        {1, 1, 1},
                                        {{1, 1}, {0, 0}, {0, 0}},
                                        {{1}, {1}, {}});
  EXPECT_TRUE(spec.invariants()[0].predicate(good));
}

TEST(RaftMongoSpecTest, InvariantRejectsTwoLeaders) {
  RaftMongoSpec spec(SmallConfig(RaftMongoVariant::kDetailed));
  State bad = RaftMongoSpec::MakeState({"Leader", "Leader", "Follower"},
                                       {1, 2, 2},
                                       {{0, 0}, {0, 0}, {0, 0}},
                                       {{}, {}, {}});
  EXPECT_FALSE(spec.invariants()[1].predicate(bad));
}

TEST(RaftMongoSpecTest, ConstraintPrunesBigStates) {
  RaftMongoConfig config = SmallConfig(RaftMongoVariant::kDetailed);
  RaftMongoSpec spec(config);
  State over_term = RaftMongoSpec::MakeState({"Follower", "Follower",
                                              "Follower"},
                                             {9, 0, 0},
                                             {{0, 0}, {0, 0}, {0, 0}},
                                             {{}, {}, {}});
  EXPECT_FALSE(spec.WithinConstraint(over_term));
  State long_log = RaftMongoSpec::MakeState({"Follower", "Follower",
                                             "Follower"},
                                            {1, 1, 1},
                                            {{0, 0}, {0, 0}, {0, 0}},
                                            {{1, 1, 1}, {}, {}});
  EXPECT_FALSE(spec.WithinConstraint(long_log));
}

// The observable projection of a state: the four logged variables defined,
// votedTerm existentially quantified.
TraceState FullTrace(const State& s) {
  return RaftMongoSpec::ToObservableTraceState(s);
}

TEST(RaftMongoSpecTest, LegalBehaviorTraceChecks) {
  RaftMongoSpec spec(SmallConfig(RaftMongoVariant::kDetailed));
  std::vector<TraceState> trace = {
      FullTrace(RaftMongoSpec::MakeState(
          {"Follower", "Follower", "Follower"}, {0, 0, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})),
      // Node 0 is elected: only the candidate's visible term changes (the
      // voters' durable votedTerm updates are invisible).
      FullTrace(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 0, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})),
      // Node 1 learns the term through gossip.
      FullTrace(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 1, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})),
      // Client write on the leader.
      FullTrace(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 1, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{1}, {}, {}})),
      // Node 1 replicates.
      FullTrace(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 1, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{1}, {1}, {}})),
      // The leader advances the commit point.
      FullTrace(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 1, 0},
          {{1, 1}, {0, 0}, {0, 0}}, {{1}, {1}, {}})),
  };
  auto result = tlax::TraceChecker().Check(spec, trace);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result.step_actions[1],
            std::vector<std::string>{"BecomePrimaryByMagic"});
  EXPECT_EQ(result.step_actions[2],
            std::vector<std::string>{"UpdateTermThroughHeartbeat"});
  EXPECT_EQ(result.step_actions[5],
            std::vector<std::string>{"AdvanceCommitPoint"});
}

TEST(RaftMongoSpecTest, IllegalTransitionFailsTraceCheck) {
  RaftMongoSpec spec(SmallConfig(RaftMongoVariant::kDetailed));
  std::vector<TraceState> trace = {
      FullTrace(RaftMongoSpec::MakeState(
          {"Follower", "Follower", "Follower"}, {0, 0, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})),
      FullTrace(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 0, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})),
      // The leader's log jumps by TWO entries in one step: no single
      // ClientWrite explains it.
      FullTrace(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 0, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{1, 1}, {}, {}})),
  };
  auto result = tlax::TraceChecker().Check(spec, trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failed_step, 2u);
}

TEST(RaftMongoSpecTest, PartialTraceWithUnloggedOplogPasses) {
  // Pressler's refinement: the oplog variable is never logged; the checker
  // must find oplog assignments that explain the role/term/commit changes.
  RaftMongoSpec spec(SmallConfig(RaftMongoVariant::kDetailed));
  auto partial = [](const State& s) {
    TraceState t = FullTrace(s);
    t.vars[RaftMongoSpec::kOplog] = std::nullopt;
    return t;
  };
  std::vector<TraceState> trace = {
      partial(RaftMongoSpec::MakeState(
          {"Follower", "Follower", "Follower"}, {0, 0, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})),
      partial(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 0, 0},
          {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})),
      partial(RaftMongoSpec::MakeState(
          {"Leader", "Follower", "Follower"}, {1, 0, 0},
          {{1, 1}, {0, 0}, {0, 0}}, {{}, {}, {}})),
  };
  // Step 2 needs: write, replicate (invisible), then AdvanceCommitPoint —
  // more than one hidden step per trace step, so allow stuttering... no:
  // hidden steps BETWEEN trace events are not stuttering; each trace step
  // must be ONE action. The commit point cannot move without visible
  // intermediate events here, so this still fails...
  // Actually AdvanceCommitPoint requires the majority to hold the entry,
  // which requires prior ClientWrite+AppendOplog steps; with the oplog
  // hidden those produce IDENTICAL visible states, which strict mode
  // rejects. With stuttering allowed they are absorbed.
  tlax::TraceCheckOptions options;
  options.allow_stuttering = true;
  // Insert the invisible steps as duplicated partial states.
  std::vector<TraceState> padded = {trace[0], trace[1], trace[1],
                                    trace[1], trace[2]};
  auto result = tlax::TraceChecker(options).Check(spec, padded);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
}

}  // namespace
}  // namespace xmodel::specs
