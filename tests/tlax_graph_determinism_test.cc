// Determinism of parallel state-graph recording: a record_graph run must
// produce a graph — node ids, edge lists, duplicate-edge count, and the
// full DOT serialization, byte for byte — that is identical at 1, 2, and
// 4 workers, on clean specs and on violating configurations. This is the
// property that lets MBTCG and liveness checking run at full worker
// parallelism (see DESIGN.md "Parallel graph recording").
//
// Also home to the concurrent-recorder hammer, which drives the
// StateGraph recording API directly from racing threads; run it under the
// TSan CI job.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "specs/array_ot_spec.h"
#include "specs/locking_spec.h"
#include "specs/raft_mongo_spec.h"
#include "tlax/checker.h"
#include "tlax/liveness.h"
#include "tlax/spec.h"
#include "tlax/state_graph.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

// Runs `spec` with record_graph at several worker counts and asserts the
// recorded graph matches the single-worker baseline exactly.
void ExpectGraphInvariant(const Spec& spec, CheckerOptions options = {}) {
  options.record_graph = true;
  options.num_workers = 1;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  ASSERT_NE(base.graph, nullptr);
  EXPECT_EQ(base.workers_used, 1);
  const std::string base_dot = base.graph->ToDot(spec.variables());

  for (int workers : {2, 4}) {
    SCOPED_TRACE(testing::Message() << spec.name() << " with " << workers
                                    << " workers");
    options.num_workers = workers;
    CheckResult result = ModelChecker(options).Check(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ASSERT_NE(result.graph, nullptr);
    EXPECT_EQ(result.workers_used, workers);

    EXPECT_EQ(result.graph->num_states(), base.graph->num_states());
    EXPECT_EQ(result.graph->num_edges(), base.graph->num_edges());
    EXPECT_EQ(result.graph->num_duplicate_edges(),
              base.graph->num_duplicate_edges());
    EXPECT_EQ(result.graph->initial_states(), base.graph->initial_states());
    EXPECT_EQ(result.graph->ToDot(spec.variables()), base_dot)
        << "DOT output must be byte-identical across worker counts";

    ASSERT_EQ(result.violation.has_value(), base.violation.has_value());
    if (base.violation.has_value()) {
      EXPECT_EQ(result.violation->kind, base.violation->kind);
    }
  }
}

TEST(GraphDeterminismTest, RaftMongoDetailed) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  ExpectGraphInvariant(specs::RaftMongoSpec(config));
}

TEST(GraphDeterminismTest, LockingSpec) {
  specs::LockingConfig config;
  config.num_contexts = 2;
  ExpectGraphInvariant(specs::LockingSpec(config));
}

TEST(GraphDeterminismTest, ArrayOt) {
  specs::ArrayOtConfig config;
  config.num_clients = 2;
  config.initial_array_len = 2;
  ExpectGraphInvariant(specs::ArrayOtSpec(config));
}

TEST(GraphDeterminismTest, ArrayOtWithInjectedTranscriptionError) {
  // A violating run still settles the violating level into the graph
  // before the winner is chosen, so the recorded graph — violating states
  // included — must be worker-count-invariant too.
  specs::ArrayOtConfig config;
  config.num_clients = 2;
  config.initial_array_len = 2;
  config.inject_transcription_error = true;
  specs::ArrayOtSpec spec(config);
  CheckerOptions options;
  options.record_graph = true;
  options.num_workers = 1;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_TRUE(base.violation.has_value())
      << "the injected transcription error must be caught";
  ExpectGraphInvariant(spec);
}

TEST(GraphDeterminismTest, LivenessResultsAreWorkerInvariant) {
  // Liveness consumes the recorded graph, so byte-identity must carry
  // through to SCC structure and leads-to verdicts.
  specs::LockingConfig config;
  config.num_contexts = 2;
  specs::LockingSpec spec(config);
  CheckerOptions options;
  options.record_graph = true;

  options.num_workers = 1;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_NE(base.graph, nullptr);
  uint32_t base_sccs = 0;
  StronglyConnectedComponents(*base.graph, &base_sccs);

  for (int workers : {2, 4}) {
    options.num_workers = workers;
    CheckResult result = ModelChecker(options).Check(spec);
    ASSERT_NE(result.graph, nullptr);
    uint32_t sccs = 0;
    std::vector<uint32_t> ids =
        StronglyConnectedComponents(*result.graph, &sccs);
    EXPECT_EQ(sccs, base_sccs) << "workers=" << workers;
    EXPECT_EQ(ids.size(), result.graph->num_states());
  }
}

// Drives the concurrent recording API directly from racing threads — the
// pattern the checker uses, minus the checker: N workers register
// interleaved nodes and cross-edges, then a single settle assigns ids.
// Primarily a TSan target; the assertions also pin the settled shape.
TEST(GraphDeterminismTest, ConcurrentRecorderHammer) {
  constexpr int kWorkers = 4;
  constexpr uint64_t kNodesPerWorker = 1000;

  StateGraph graph;
  graph.BeginRecording(kWorkers);
  const State seed(std::vector<Value>{Value::Int(0)});
  const uint32_t root = graph.RegisterSeed(1, seed, /*constrained=*/true);
  ASSERT_EQ(root, 0u);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([w, root, &graph] {
      for (uint64_t i = 0; i < kNodesPerWorker; ++i) {
        // Distinct fingerprints per worker; every 10th state is outside
        // the constraint so kNoId resolution is exercised under load.
        const uint64_t fp = 2 + static_cast<uint64_t>(w) * kNodesPerWorker + i;
        const bool constrained = fp % 10 != 0;
        graph.RecordNode(fp, State(std::vector<Value>{Value::Int(
                                 static_cast<int64_t>(fp))}),
                         constrained);
        graph.RecordEdge(w, root, fp, /*action=*/0);
        // Duplicate edge to a fingerprint some other worker registers
        // (or nobody does — dropped either way without crashing).
        graph.RecordEdge(w, root, fp + 1, /*action=*/1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  graph.SettleLevel([](uint64_t fp) { return fp; });

  const uint64_t total = kWorkers * kNodesPerWorker;
  uint64_t constrained = 0;
  for (uint64_t fp = 2; fp < 2 + total; ++fp) {
    if (fp % 10 != 0) ++constrained;
  }
  // Root + every constrained recorded node got an id, in fingerprint
  // (= settle key) order.
  EXPECT_EQ(graph.num_states(), constrained + 1);
  EXPECT_EQ(graph.IdOf(1), 0u);
  // Settled ids are dense and ascending in key order.
  uint32_t expect_id = 1;
  for (uint64_t fp = 2; fp < 2 + total; ++fp) {
    if (fp % 10 != 0) {
      EXPECT_EQ(graph.IdOf(fp), expect_id) << "fp=" << fp;
      ++expect_id;
    } else {
      EXPECT_EQ(graph.IdOf(fp), StateGraph::kNoId) << "fp=" << fp;
    }
  }
  // Every surviving edge leaves the root; edges to unconstrained or
  // never-registered fingerprints were dropped.
  EXPECT_EQ(graph.out_edges(0).size(), graph.num_edges());
  EXPECT_GT(graph.num_edges(), constrained);
}

}  // namespace
}  // namespace xmodel::tlax
