#include <gtest/gtest.h>

#include "ot/operation.h"

namespace xmodel::ot {
namespace {

TEST(OperationTest, ApplySet) {
  Array a = {1, 2, 3};
  EXPECT_TRUE(Operation::Set(1, 9).Apply(&a).ok());
  EXPECT_EQ(a, (Array{1, 9, 3}));
  EXPECT_FALSE(Operation::Set(3, 9).Apply(&a).ok());
  EXPECT_FALSE(Operation::Set(-1, 9).Apply(&a).ok());
}

TEST(OperationTest, ApplyInsert) {
  Array a = {1, 2};
  EXPECT_TRUE(Operation::Insert(0, 9).Apply(&a).ok());
  EXPECT_EQ(a, (Array{9, 1, 2}));
  EXPECT_TRUE(Operation::Insert(3, 8).Apply(&a).ok());
  EXPECT_EQ(a, (Array{9, 1, 2, 8}));
  EXPECT_FALSE(Operation::Insert(9, 7).Apply(&a).ok());
}

TEST(OperationTest, ApplyMove) {
  Array a = {1, 2, 3};
  EXPECT_TRUE(Operation::Move(0, 2).Apply(&a).ok());
  EXPECT_EQ(a, (Array{2, 3, 1}));
  EXPECT_TRUE(Operation::Move(2, 0).Apply(&a).ok());
  EXPECT_EQ(a, (Array{1, 2, 3}));
  EXPECT_TRUE(Operation::Move(1, 1).Apply(&a).ok());  // No-op move.
  EXPECT_EQ(a, (Array{1, 2, 3}));
  EXPECT_FALSE(Operation::Move(0, 3).Apply(&a).ok());
}

TEST(OperationTest, ApplySwapEraseClear) {
  Array a = {1, 2, 3};
  EXPECT_TRUE(Operation::Swap(0, 2).Apply(&a).ok());
  EXPECT_EQ(a, (Array{3, 2, 1}));
  EXPECT_TRUE(Operation::Erase(1).Apply(&a).ok());
  EXPECT_EQ(a, (Array{3, 1}));
  EXPECT_TRUE(Operation::Clear().Apply(&a).ok());
  EXPECT_TRUE(a.empty());
  EXPECT_FALSE(Operation::Erase(0).Apply(&a).ok());
  EXPECT_TRUE(Operation::Clear().Apply(&a).ok());  // Clear of empty is fine.
}

TEST(OperationTest, LastWriteWins) {
  Operation a = Operation::Set(0, 1).At(5, 1);
  Operation b = Operation::Set(0, 2).At(4, 9);
  EXPECT_TRUE(WinsOver(a, b));   // Newer timestamp.
  EXPECT_FALSE(WinsOver(b, a));
  Operation c = Operation::Set(0, 3).At(5, 2);
  EXPECT_TRUE(WinsOver(c, a));   // Same timestamp, higher client id.
  EXPECT_FALSE(WinsOver(a, a));  // Irreflexive.
}

TEST(OperationTest, EqualityAndEffect) {
  Operation a = Operation::Set(0, 1).At(1, 2);
  Operation b = Operation::Set(0, 1).At(3, 4);
  EXPECT_FALSE(a == b);          // Metadata differs.
  EXPECT_TRUE(a.SameEffect(b));  // Effect does not.
  EXPECT_FALSE(a.SameEffect(Operation::Set(1, 1)));
}

TEST(OperationTest, ToStringForms) {
  EXPECT_EQ(Operation::Set(2, 4).ToString(), "ArraySet{2, 4}");
  EXPECT_EQ(Operation::Insert(0, 7).ToString(), "ArrayInsert{0, 7}");
  EXPECT_EQ(Operation::Move(1, 3).ToString(), "ArrayMove{1 -> 3}");
  EXPECT_EQ(Operation::Swap(0, 2).ToString(), "ArraySwap{0, 2}");
  EXPECT_EQ(Operation::Erase(5).ToString(), "ArrayErase{5}");
  EXPECT_EQ(Operation::Clear().ToString(), "ArrayClear{}");
}

TEST(OperationTest, ApplyAllStopsOnError) {
  Array a = {1};
  OpList ops = {Operation::Erase(0), Operation::Erase(0)};
  EXPECT_FALSE(ApplyAll(ops, &a).ok());
  EXPECT_TRUE(a.empty());  // First op applied.
}

}  // namespace
}  // namespace xmodel::ot
