// Unit tests for the sharded fingerprint table backing the parallel
// checker: insert/merge semantics, the POR expansion handshake, the
// collision audit, and a multi-threaded insert hammer that the TSan CI
// job runs to certify the locking.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "tlax/fpset.h"
#include "tlax/state.h"
#include "tlax/value.h"

namespace xmodel::tlax {
namespace {

State MakeState(int64_t x, int64_t y) {
  return State({Value::Int(x), Value::Int(y)});
}

TEST(FingerprintTest, StableAndDiscriminating) {
  State a = MakeState(1, 2);
  State b = MakeState(1, 2);
  State c = MakeState(2, 1);
  EXPECT_EQ(Fingerprint(a), Fingerprint(b));
  EXPECT_NE(Fingerprint(a), Fingerprint(c));
  // The table key is decorrelated from the raw state hash other layers use.
  EXPECT_NE(Fingerprint(a), a.fingerprint());
}

TEST(FpsetTest, InsertThenDuplicate) {
  FingerprintSet set;
  FpInsert first = set.Insert(/*fp=*/100, /*pred_fp=*/0, kFpInitialAction,
                              /*depth=*/0, /*order_key=*/0, /*sleep_mask=*/0,
                              nullptr);
  EXPECT_TRUE(first.inserted);
  EXPECT_EQ(first.depth, 0);
  EXPECT_EQ(set.size(), 1u);

  FpInsert dup = set.Insert(100, /*pred_fp=*/7, /*action=*/3, /*depth=*/5,
                            /*order_key=*/99, 0, nullptr);
  EXPECT_FALSE(dup.inserted);
  EXPECT_FALSE(dup.collision);
  EXPECT_EQ(dup.depth, 0) << "existing record's depth is reported";
  EXPECT_EQ(set.size(), 1u);

  auto edge = set.GetEdge(100);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->action, kFpInitialAction)
      << "a later, deeper insert must not overwrite the discovery edge";
  EXPECT_FALSE(set.GetEdge(101).has_value());
}

TEST(FpsetTest, MinMergeAdoptsSmallerSameDepthKey) {
  FingerprintSet set;
  set.Insert(/*fp=*/1, 0, kFpInitialAction, 0, 0, 0, nullptr);
  set.Insert(/*fp=*/2, 0, kFpInitialAction, 0, 1, 0, nullptr);
  // First discovery of fp 50 at depth 1 via pred 2, key 40.
  set.Insert(50, /*pred_fp=*/2, /*action=*/4, /*depth=*/1, /*order_key=*/40,
             0, nullptr);
  // A same-depth rediscovery with a SMALLER key wins the predecessor slot…
  set.Insert(50, /*pred_fp=*/1, /*action=*/2, /*depth=*/1, /*order_key=*/10,
             0, nullptr);
  auto edge = set.GetEdge(50);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->pred_fp, 1u);
  EXPECT_EQ(edge->action, 2);
  EXPECT_EQ(edge->order_key, 10u);
  // …and a larger key does not.
  set.Insert(50, /*pred_fp=*/2, /*action=*/9, /*depth=*/1, /*order_key=*/20,
             0, nullptr);
  edge = set.GetEdge(50);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->pred_fp, 1u);
  EXPECT_EQ(edge->order_key, 10u);
}

TEST(FpsetTest, AuditCountsGenuineCollisions) {
  FingerprintSet::Options options;
  options.audit = true;
  FingerprintSet set(options);
  EXPECT_TRUE(set.keep_states());

  State a = MakeState(1, 2);
  State b = MakeState(3, 4);
  set.Insert(100, 0, kFpInitialAction, 0, 0, 0, &a);
  // Same fingerprint, same state: a plain duplicate, not a collision.
  FpInsert dup = set.Insert(100, 0, kFpInitialAction, 0, 1, 0, &a);
  EXPECT_FALSE(dup.collision);
  EXPECT_EQ(set.collisions(), 0u);
  // Same fingerprint, different state: a genuine 64-bit collision.
  FpInsert clash = set.Insert(100, 0, kFpInitialAction, 0, 2, 0, &b);
  EXPECT_FALSE(clash.inserted);
  EXPECT_TRUE(clash.collision);
  EXPECT_EQ(set.collisions(), 1u);

  auto stored = set.FindState(100);
  ASSERT_TRUE(stored.has_value());
  EXPECT_EQ(*stored, a) << "the first-inserted state stays authoritative";
}

TEST(FpsetTest, PorSleepIntersectSettleAndWake) {
  FingerprintSet::Options options;
  options.track_por = true;
  FingerprintSet set(options);
  const uint64_t all = 0b1111;

  // Discovered with actions {1,3} slept (mask 0b1010).
  set.Insert(7, 0, kFpInitialAction, 0, 0, /*sleep_mask=*/0b1010, nullptr);
  FingerprintSet::ExpandGrant grant = set.AcquireExpand(7, all);
  EXPECT_EQ(grant.sleep, 0b1010u);
  EXPECT_EQ(grant.explored_before, 0u);
  EXPECT_EQ(grant.to_expand, 0b0101u);

  // Re-discovery with a smaller sleep set {3}: the shrink is pending, not
  // settled — expansion still sees the old mask until the barrier.
  FpInsert shrink = set.Insert(7, 9, 2, 1, 5, /*sleep_mask=*/0b1000, nullptr);
  EXPECT_FALSE(shrink.inserted);
  EXPECT_TRUE(shrink.sleep_shrunk);

  // Barrier: settling applies the shrink and wakes the freed action 1.
  FingerprintSet::PorSettle settle = set.SettlePor(7, all);
  EXPECT_TRUE(settle.wake);
  EXPECT_EQ(settle.depth, 0);
  grant = set.AcquireExpand(7, all);
  EXPECT_EQ(grant.sleep, 0b1000u);
  EXPECT_EQ(grant.explored_before, 0b0101u);
  EXPECT_EQ(grant.to_expand, 0b0010u) << "only the newly freed action";

  // A further revisit with the same mask leaves pending == settled…
  FpInsert quiet = set.Insert(7, 9, 2, 1, 6, /*sleep_mask=*/0b1000, nullptr);
  EXPECT_FALSE(quiet.sleep_shrunk);
  // …and settling an already-queued state applies the mask but does not
  // enqueue it a second time.
  set.Insert(8, 0, kFpInitialAction, 0, 1, 0b0001, nullptr);
  FpInsert requeue = set.Insert(8, 9, 1, 1, 7, /*sleep_mask=*/0, nullptr);
  EXPECT_TRUE(requeue.sleep_shrunk);
  settle = set.SettlePor(8, all);
  EXPECT_FALSE(settle.wake)
      << "still queued from the original insert; no duplicate enqueue";
  grant = set.AcquireExpand(8, all);
  EXPECT_EQ(grant.sleep, 0u) << "the settled mask picked up the shrink";
}

TEST(FpsetTest, ShardCountRoundsUpToPowerOfTwo) {
  FingerprintSet::Options options;
  options.num_shards = 5;
  FingerprintSet set(options);
  EXPECT_EQ(set.num_shards(), 8u);
  // Single-shard degenerate case still works (shift-by-64 guard).
  options.num_shards = 1;
  FingerprintSet one(options);
  set.Insert(0xFFFFFFFFFFFFFFFFull, 0, kFpInitialAction, 0, 0, 0, nullptr);
  one.Insert(0xFFFFFFFFFFFFFFFFull, 0, kFpInitialAction, 0, 0, 0, nullptr);
  EXPECT_EQ(one.num_shards(), 1u);
  EXPECT_EQ(one.size(), 1u);
}

// Concurrent insert hammer: T threads race to insert an overlapping key
// range; exactly one inserter may win each key, the final size must be
// exact, and every record must carry one of the racing predecessors.
// Run under TSan in CI to certify the shard locking.
TEST(FpsetTest, ConcurrentInsertHammer) {
  FingerprintSet::Options options;
  options.num_shards = 8;  // Few shards -> plenty of lock contention.
  FingerprintSet set(options);
  constexpr int kThreads = 8;
  constexpr uint64_t kKeys = 20'000;
  std::atomic<uint64_t> wins{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, &wins, t] {
      uint64_t local_wins = 0;
      for (uint64_t k = 0; k < kKeys; ++k) {
        // Spread keys over all shards; every thread visits every key.
        uint64_t fp = common::Mix64(k + 1);
        FpInsert r = set.Insert(fp, /*pred_fp=*/static_cast<uint64_t>(t),
                                /*action=*/static_cast<uint16_t>(t),
                                /*depth=*/1, /*order_key=*/k, 0, nullptr);
        if (r.inserted) ++local_wins;
        EXPECT_EQ(r.depth, 1);
      }
      wins.fetch_add(local_wins, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(set.size(), kKeys);
  EXPECT_EQ(wins.load(), kKeys) << "exactly one inserter wins each key";
  EXPECT_EQ(set.collisions(), 0u);
  for (uint64_t k = 0; k < kKeys; ++k) {
    auto edge = set.GetEdge(common::Mix64(k + 1));
    ASSERT_TRUE(edge.has_value());
    EXPECT_LT(edge->pred_fp, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(edge->action, static_cast<uint16_t>(edge->pred_fp))
        << "pred_fp and action must come from the same racing insert";
  }
  EXPECT_GT(set.load_factor(), 0.0);
}

}  // namespace
}  // namespace xmodel::tlax
