// Out-of-core checking: the disk-tiered fingerprint set, frontier
// spill, and checkpoint/resume must be invisible to results. A run
// under a tight memory budget — forcing several spill generations and
// frontier segments — must produce bit-identical counts and verdicts to
// an unlimited in-memory run, at every worker count and under both
// exploration policies. A run killed mid-flight (here: an injected
// max_distinct_states abort) must resume from its last checkpoint and
// finish with the same final counts as an uninterrupted run. Corrupted
// checkpoint artifacts must fail resume with a clean kCorruption, never
// a crash or a silently wrong answer. See DESIGN.md "Out-of-core
// checking".

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/fileio.h"
#include "common/status.h"
#include "common/strings.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"
#include "tlax/spec.h"

namespace xmodel::tlax {
namespace {

// A per-test scratch directory under the gtest temp root, emptied of
// any leftovers from a previous run of this binary.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "xmodel_ooc_" + name;
  std::vector<std::string> files;
  if (common::ListDirFiles(dir, &files).ok()) {
    for (const std::string& file : files) {
      common::Status status = common::RemoveFileIfExists(dir + "/" + file);
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
  }
  common::Status status = common::EnsureDir(dir);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return dir;
}

// CounterSpec(250) has 251*251 = 63001 distinct states across 501 BFS
// levels — enough that a 1 MB hot-table budget forces five eviction
// generations, and a 64-entry in-memory frontier cap forces level
// spooling on the wide middle levels.
constexpr int64_t kWideLimit = 250;

void ExpectSpillInvisible(ExplorationPolicy policy) {
  const specs::CounterSpec spec(kWideLimit);
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE(testing::Message()
                 << ExplorationPolicyName(policy) << " with " << workers
                 << " workers");
    CheckerOptions options;
    options.exploration = policy;
    options.num_workers = workers;
    CheckResult base = ModelChecker(options).Check(spec);
    ASSERT_TRUE(base.status.ok()) << base.status.ToString();
    EXPECT_FALSE(base.spill_enabled);

    CheckerOptions tight = options;
    tight.memory_budget_mb = 1;
    tight.frontier_inmem_entries = 64;
    tight.spill_dir =
        FreshDir(common::StrCat("tight_", ExplorationPolicyName(policy), "_w",
                                workers));
    CheckResult result = ModelChecker(tight).Check(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.spill_enabled);
    EXPECT_TRUE(result.spill_notice.empty()) << result.spill_notice;
    // The acceptance bar: a tight budget must actually exercise the
    // tier, not just enable it.
    EXPECT_GE(result.spill_generations, 4u);
    EXPECT_GT(result.spill_bytes, 0u);
    EXPECT_GT(result.spill_records, 0u);

    // Both policies promise exact distinct/generated counts and
    // verdicts regardless of where the seen-set lives.
    EXPECT_EQ(result.distinct_states, base.distinct_states);
    EXPECT_EQ(result.generated_states, base.generated_states);
    EXPECT_EQ(result.fingerprint_collisions, base.fingerprint_collisions);
    EXPECT_FALSE(result.violation.has_value());
    if (policy == ExplorationPolicy::kLevelSync) {
      // Level-sync additionally promises bit-identical order-dependent
      // fields; the frontier spool must also have been exercised (wide
      // middle levels far exceed the 64-entry cap).
      EXPECT_EQ(result.diameter, base.diameter);
      EXPECT_EQ(result.frontier_peak, base.frontier_peak);
      EXPECT_GT(result.frontier_segments, 0u);
    }

    // The run-format knobs (Bloom bits per key, block size) change disk
    // layout and probe costs only — never counts.
    CheckerOptions knobs = tight;
    knobs.spill_bloom_bits = 4;
    knobs.spill_block_entries = 32;
    knobs.spill_dir =
        FreshDir(common::StrCat("knobs_", ExplorationPolicyName(policy), "_w",
                                workers));
    CheckResult tuned = ModelChecker(knobs).Check(spec);
    ASSERT_TRUE(tuned.status.ok()) << tuned.status.ToString();
    EXPECT_TRUE(tuned.spill_enabled);
    EXPECT_EQ(tuned.distinct_states, base.distinct_states);
    EXPECT_EQ(tuned.generated_states, base.generated_states);
    EXPECT_EQ(tuned.fingerprint_collisions, base.fingerprint_collisions);
    EXPECT_FALSE(tuned.violation.has_value());
    if (policy == ExplorationPolicy::kLevelSync) {
      EXPECT_EQ(tuned.diameter, base.diameter);
    }
  }
}

TEST(OutOfCoreTest, LevelSyncTightBudgetMatchesUnlimited) {
  ExpectSpillInvisible(ExplorationPolicy::kLevelSync);
}

TEST(OutOfCoreTest, RelaxedTightBudgetMatchesUnlimited) {
  ExpectSpillInvisible(ExplorationPolicy::kRelaxed);
}

// Counterexample traces are rebuilt by walking predecessor records, and
// under spilling most of those records live in the on-disk sidecar. The
// rebuilt trace must match the in-memory one exactly.
TEST(OutOfCoreTest, LevelSyncViolationTraceIdenticalUnderSpill) {
  const specs::CounterSpec spec(kWideLimit, /*violate_at=*/300);
  CheckerOptions options;
  options.num_workers = 2;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  ASSERT_TRUE(base.violation.has_value());

  CheckerOptions tight = options;
  tight.memory_budget_mb = 1;
  tight.frontier_inmem_entries = 64;
  tight.spill_dir = FreshDir("trace_level");
  CheckResult result = ModelChecker(tight).Check(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.spill_enabled);
  EXPECT_GT(result.spill_records, 0u);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, base.violation->kind);
  EXPECT_EQ(result.distinct_states, base.distinct_states);
  ASSERT_EQ(result.violation->trace.size(), base.violation->trace.size());
  for (size_t i = 0; i < base.violation->trace.size(); ++i) {
    EXPECT_EQ(result.violation->trace[i].action,
              base.violation->trace[i].action)
        << "trace step " << i;
  }
}

TEST(OutOfCoreTest, RelaxedViolationVerdictIdenticalUnderSpill) {
  const specs::CounterSpec spec(kWideLimit, /*violate_at=*/300);
  CheckerOptions options;
  options.exploration = ExplorationPolicy::kRelaxed;
  options.num_workers = 2;
  CheckResult base = ModelChecker(options).Check(spec);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  ASSERT_TRUE(base.violation.has_value());

  CheckerOptions tight = options;
  tight.memory_budget_mb = 1;
  tight.frontier_inmem_entries = 64;
  tight.spill_dir = FreshDir("trace_relaxed");
  CheckResult result = ModelChecker(tight).Check(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.spill_enabled);
  ASSERT_TRUE(result.violation.has_value());
  EXPECT_EQ(result.violation->kind, base.violation->kind);
  // Relaxed violating runs drain the whole reachable space, so distinct
  // stays invariant even on violations.
  EXPECT_EQ(result.distinct_states, base.distinct_states);
}

// A state space wide enough that the tight budget seals well past the
// compaction threshold, so the background compaction thread provably
// merges runs mid-run — concurrent with exploration — and counts still
// match the unlimited run exactly.
TEST(OutOfCoreTest, MidRunBackgroundCompactionStaysExact) {
  const specs::CounterSpec spec(/*limit=*/350);
  for (ExplorationPolicy policy :
       {ExplorationPolicy::kLevelSync, ExplorationPolicy::kRelaxed}) {
    SCOPED_TRACE(ExplorationPolicyName(policy));
    CheckerOptions options;
    options.exploration = policy;
    options.num_workers = 2;
    CheckResult base = ModelChecker(options).Check(spec);
    ASSERT_TRUE(base.status.ok()) << base.status.ToString();

    CheckerOptions tight = options;
    tight.memory_budget_mb = 1;
    tight.frontier_inmem_entries = 64;
    tight.spill_dir = FreshDir(
        common::StrCat("compact_", ExplorationPolicyName(policy)));
    CheckResult result = ModelChecker(tight).Check(spec);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.spill_enabled);
    EXPECT_GE(result.spill_compactions, 1u)
        << "the budget must force enough generations to trip compaction";
    EXPECT_EQ(result.distinct_states, base.distinct_states);
    EXPECT_EQ(result.generated_states, base.generated_states);
    EXPECT_EQ(result.fingerprint_collisions, base.fingerprint_collisions);
    EXPECT_FALSE(result.violation.has_value());
  }
}

// Spilling silently steps aside for modes that need full in-memory
// state, with a notice explaining why.
TEST(OutOfCoreTest, SpillGatedOffUnderRecordGraph) {
  const specs::CounterSpec spec(/*limit=*/10);
  CheckerOptions options;
  options.record_graph = true;
  options.memory_budget_mb = 1;
  CheckResult result = ModelChecker(options).Check(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_FALSE(result.spill_enabled);
  EXPECT_NE(result.spill_notice.find("record_graph"), std::string::npos)
      << result.spill_notice;
  EXPECT_EQ(result.distinct_states, 121u);
}

// ---------------------------------------------------------------------
// Checkpoint/resume.
//
// The interrupted run uses an injected abort — a max_distinct_states
// ceiling trips ResourceExhausted partway through — which exercises the
// same recovery path as a SIGKILL: the next process sees only what the
// last durable manifest named. checkpoint_every_s = 0 checkpoints at
// every opportunity so the abort always lands past several checkpoints.

// 61*61 = 3721 states over 121 levels: big enough for several
// checkpoints before a 1500-state abort, small enough that the durable
// (fsynced) checkpoint-per-level cadence stays fast.
constexpr int64_t kResumeLimit = 60;
constexpr uint64_t kAbortAfter = 1500;

CheckerOptions CheckpointOptions(ExplorationPolicy policy, int workers,
                                 const std::string& dir) {
  CheckerOptions options;
  options.exploration = policy;
  options.num_workers = workers;
  options.checkpoint_dir = dir;
  options.checkpoint_every_s = 0;
  return options;
}

// Runs the injected-abort phase. Level-sync checkpoints at every level
// barrier, so at least one checkpoint always lands before the abort.
// Relaxed checkpoints at a worker rendezvous, and under heavy scheduler
// load the abort can occasionally win the race to the first rendezvous
// (exiting workers cancel the pending request) — retry with a fresh
// directory until a checkpoint lands.
CheckResult RunInterrupted(const Spec& spec, ExplorationPolicy policy,
                           int workers, const std::string& dir_name,
                           std::string* dir) {
  CheckResult partial;
  for (int attempt = 0; attempt < 10; ++attempt) {
    *dir = FreshDir(dir_name);
    CheckerOptions interrupted = CheckpointOptions(policy, workers, *dir);
    interrupted.max_distinct_states = kAbortAfter;
    partial = ModelChecker(interrupted).Check(spec);
    EXPECT_EQ(partial.status.code(), common::StatusCode::kResourceExhausted)
        << partial.status.ToString();
    if (partial.checkpoints_written >= 1) break;
  }
  return partial;
}

void ExpectResumeMatchesUninterrupted(ExplorationPolicy policy) {
  const specs::CounterSpec spec(kResumeLimit);
  CheckerOptions plain;
  plain.exploration = policy;
  plain.num_workers = 2;
  CheckResult reference = ModelChecker(plain).Check(spec);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();

  std::string dir;
  CheckResult partial = RunInterrupted(
      spec, policy, 2, common::StrCat("resume_", ExplorationPolicyName(policy)),
      &dir);
  ASSERT_GE(partial.checkpoints_written, 1u);

  CheckerOptions resume = CheckpointOptions(policy, 2, dir);
  resume.resume = true;
  CheckResult result = ModelChecker(resume).Check(spec);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_TRUE(result.resumed);
  EXPECT_EQ(result.distinct_states, reference.distinct_states);
  EXPECT_EQ(result.generated_states, reference.generated_states);
  EXPECT_EQ(result.fingerprint_collisions, reference.fingerprint_collisions);
  EXPECT_FALSE(result.violation.has_value());
  if (policy == ExplorationPolicy::kLevelSync) {
    EXPECT_EQ(result.diameter, reference.diameter);
  }
}

TEST(CheckpointTest, LevelSyncResumeMatchesUninterrupted) {
  ExpectResumeMatchesUninterrupted(ExplorationPolicy::kLevelSync);
}

TEST(CheckpointTest, RelaxedResumeMatchesUninterrupted) {
  ExpectResumeMatchesUninterrupted(ExplorationPolicy::kRelaxed);
}

TEST(CheckpointTest, ResumeRequiresCheckpointDir) {
  CheckerOptions options;
  options.resume = true;
  CheckResult result = ModelChecker(options).Check(specs::CounterSpec(4));
  EXPECT_EQ(result.status.code(), common::StatusCode::kInvalidArgument)
      << result.status.ToString();
}

TEST(CheckpointTest, MissingManifestIsCleanError) {
  CheckerOptions options =
      CheckpointOptions(ExplorationPolicy::kLevelSync, 1,
                        FreshDir("missing_manifest"));
  options.resume = true;
  CheckResult result = ModelChecker(options).Check(specs::CounterSpec(4));
  EXPECT_FALSE(result.status.ok());
  EXPECT_NE(result.status.message().find("no checkpoint manifest"),
            std::string::npos)
      << result.status.ToString();
}

TEST(CheckpointTest, RelaxedResumeRequiresSameWorkerCount) {
  const specs::CounterSpec spec(kResumeLimit);
  std::string dir;
  CheckResult partial = RunInterrupted(spec, ExplorationPolicy::kRelaxed, 2,
                                       "resume_workers", &dir);
  ASSERT_GE(partial.checkpoints_written, 1u);

  CheckerOptions resume = CheckpointOptions(ExplorationPolicy::kRelaxed, 4, dir);
  resume.resume = true;
  CheckResult result = ModelChecker(resume).Check(spec);
  EXPECT_EQ(result.status.code(), common::StatusCode::kInvalidArgument)
      << result.status.ToString();
  EXPECT_NE(result.status.message().find("workers"), std::string::npos);
}

// A checkpoint whose policy doesn't match the resuming run's policy is
// rejected rather than misinterpreted.
TEST(CheckpointTest, ResumeRejectsPolicyMismatch) {
  const specs::CounterSpec spec(kResumeLimit);
  std::string dir;
  CheckResult partial = RunInterrupted(spec, ExplorationPolicy::kLevelSync, 2,
                                       "resume_policy", &dir);
  ASSERT_GE(partial.checkpoints_written, 1u);

  CheckerOptions resume = CheckpointOptions(ExplorationPolicy::kRelaxed, 2, dir);
  resume.resume = true;
  CheckResult result = ModelChecker(resume).Check(spec);
  EXPECT_EQ(result.status.code(), common::StatusCode::kInvalidArgument)
      << result.status.ToString();
}

// Crash-safety satellite: a flipped byte anywhere in a sealed run file
// fails resume with kCorruption (the adopt path re-verifies the whole
// file checksum), never a crash or a wrong answer.
TEST(CheckpointTest, CorruptedRunFailsResumeCleanly) {
  const specs::CounterSpec spec(kResumeLimit);
  std::string dir;
  CheckResult partial = RunInterrupted(spec, ExplorationPolicy::kLevelSync, 1,
                                       "resume_corrupt", &dir);
  ASSERT_GE(partial.checkpoints_written, 1u);

  std::vector<std::string> files;
  ASSERT_TRUE(common::ListDirFiles(dir, &files).ok());
  int corrupted = 0;
  for (const std::string& file : files) {
    if (file.rfind("run-", 0) != 0) continue;
    const std::string path = dir + "/" + file;
    std::string contents;
    ASSERT_TRUE(common::ReadFileToString(path, &contents).ok());
    ASSERT_FALSE(contents.empty());
    contents[contents.size() / 2] ^= 0x40;
    ASSERT_TRUE(common::WriteFileAtomic(path, contents).ok());
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0) << "checkpoint left no spill runs to corrupt";

  CheckerOptions resume =
      CheckpointOptions(ExplorationPolicy::kLevelSync, 1, dir);
  resume.resume = true;
  CheckResult result = ModelChecker(resume).Check(spec);
  EXPECT_EQ(result.status.code(), common::StatusCode::kCorruption)
      << result.status.ToString();
}

}  // namespace
}  // namespace xmodel::tlax
