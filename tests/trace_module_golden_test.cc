#include <gtest/gtest.h>

#include "specs/raft_mongo_spec.h"
#include "tlax/tla_text.h"

namespace xmodel::tlax {
namespace {

TEST(TraceModuleGoldenTest, Figure4Shape) {
  // The paper's Figure 4: a Trace module whose tuples hold role, term,
  // commit point, and oplog per node. This golden test pins the emitted
  // concrete syntax.
  using specs::RaftMongoSpec;
  std::vector<TraceState> trace;
  trace.push_back(RaftMongoSpec::ToObservableTraceState(
      RaftMongoSpec::MakeState({"Leader", "Follower", "Follower"}, {1, 1, 1},
                               {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})));
  trace.push_back(RaftMongoSpec::ToObservableTraceState(
      RaftMongoSpec::MakeState({"Follower", "Leader", "Follower"}, {1, 2, 1},
                               {{0, 0}, {0, 0}, {0, 0}}, {{}, {}, {}})));

  const std::string expected =
      "---- MODULE Trace ----\n"
      "EXTENDS Integers, Sequences\n"
      "(* Trace generated from log files. Each tuple holds, in order: "
      "role, term, commitPoint, oplog, votedTerm. *)\n"
      "Trace == <<\n"
      "  <<\n"
      "    <<\"Leader\", \"Follower\", \"Follower\">>,\n"
      "    <<1, 1, 1>>,\n"
      "    <<NULL, NULL, NULL>>,\n"
      "    <<<<>>, <<>>, <<>>>>,\n"
      "    ?\n"
      "  >>,\n"
      "  <<\n"
      "    <<\"Follower\", \"Leader\", \"Follower\">>,\n"
      "    <<1, 2, 1>>,\n"
      "    <<NULL, NULL, NULL>>,\n"
      "    <<<<>>, <<>>, <<>>>>,\n"
      "    ?\n"
      "  >>\n"
      ">>\n"
      "====\n";
  std::vector<std::string> variables = {"role", "term", "commitPoint",
                                        "oplog", "votedTerm"};
  EXPECT_EQ(TraceModuleText("Trace", variables, trace), expected);
}

}  // namespace
}  // namespace xmodel::tlax
