#include <gtest/gtest.h>

#include "ot/fixture.h"
#include "ot/handwritten_cases.h"
#include "ot/sync.h"
#include "otgo/go_merge.h"

namespace xmodel::ot {
namespace {

TEST(SyncSystemTest, OfflineEditsConverge) {
  SyncSystem sync({1, 2, 3}, 2);
  ASSERT_TRUE(sync.ClientApply(0, Operation::Set(0, 9).At(0, 1)).ok());
  ASSERT_TRUE(sync.ClientApply(1, Operation::Erase(2).At(0, 2)).ok());
  EXPECT_EQ(sync.client_state(0), (Array{9, 2, 3}));
  EXPECT_EQ(sync.client_state(1), (Array{1, 2}));
  EXPECT_EQ(sync.server_state(), (Array{1, 2, 3}));

  ASSERT_TRUE(sync.SyncAll().ok());
  EXPECT_TRUE(sync.AllConsistent());
  EXPECT_EQ(sync.server_state(), (Array{9, 2}));
}

TEST(SyncSystemTest, ClientMatchesServerAfterEachMerge) {
  SyncSystem sync({1, 2}, 3);
  ASSERT_TRUE(sync.ClientApply(0, Operation::Insert(0, 7).At(0, 1)).ok());
  ASSERT_TRUE(sync.ClientApply(1, Operation::Erase(1).At(0, 2)).ok());
  ASSERT_TRUE(sync.ClientApply(2, Operation::Set(0, 5).At(0, 3)).ok());
  for (int c = 0; c < 3; ++c) {
    ASSERT_TRUE(sync.SyncClient(c).ok());
    // The merge leaves the client exactly at the server's state.
    EXPECT_EQ(sync.client_state(c), sync.server_state()) << "client " << c;
  }
}

TEST(SyncSystemTest, UploadWithoutDownload) {
  // Full-duplex property (§2.2): a client uploads without needing new
  // server changes, and vice versa.
  SyncSystem sync({1}, 2);
  ASSERT_TRUE(sync.ClientApply(0, Operation::Insert(1, 4).At(0, 1)).ok());
  ASSERT_TRUE(sync.SyncClient(0).ok());
  EXPECT_EQ(sync.server_state(), (Array{1, 4}));
  // Client 1 downloads.
  ASSERT_TRUE(sync.SyncClient(1).ok());
  EXPECT_EQ(sync.client_state(1), (Array{1, 4}));
  EXPECT_TRUE(sync.AllConsistent());
}

TEST(SyncSystemTest, ProgressTracksVersions) {
  SyncSystem sync({1}, 2);
  EXPECT_EQ(sync.progress(0).server_version, 0);
  ASSERT_TRUE(sync.ClientApply(0, Operation::Set(0, 2).At(0, 1)).ok());
  EXPECT_TRUE(sync.ClientHasUnmergedChanges(0));
  ASSERT_TRUE(sync.SyncClient(0).ok());
  EXPECT_FALSE(sync.ClientHasUnmergedChanges(0));
  EXPECT_EQ(sync.progress(0).server_version, 1);
  EXPECT_EQ(sync.progress(0).client_version, 1);
  EXPECT_TRUE(sync.ClientHasUnmergedChanges(1));  // Hasn't downloaded yet.
}

TEST(SyncSystemTest, InvariantHoldsThroughout) {
  // Paper Figure 6: either someone has unmerged changes or everyone agrees.
  SyncSystem sync({1, 2, 3}, 3);
  EXPECT_TRUE(sync.HaveUnmergedChangesOrAreConsistent());
  ASSERT_TRUE(sync.ClientApply(0, Operation::Move(0, 2).At(0, 1)).ok());
  ASSERT_TRUE(sync.ClientApply(1, Operation::Erase(0).At(0, 2)).ok());
  EXPECT_TRUE(sync.HaveUnmergedChangesOrAreConsistent());
  ASSERT_TRUE(sync.SyncAll().ok());
  EXPECT_TRUE(sync.HaveUnmergedChangesOrAreConsistent());
  EXPECT_TRUE(sync.AllConsistent());
}

TEST(SyncSystemTest, AppliedOpsRecorded) {
  SyncSystem sync({1, 2, 3}, 2);
  ASSERT_TRUE(sync.ClientApply(0, Operation::Set(2, 4).At(0, 1)).ok());
  ASSERT_TRUE(sync.ClientApply(1, Operation::Erase(1).At(0, 2)).ok());
  ASSERT_TRUE(sync.SyncAll().ok());
  // Client 0 applied the (transformed) erase; client 1 applied the
  // transformed set — the paper's Figure 9 example.
  ASSERT_EQ(sync.applied_ops(0).size(), 1u);
  EXPECT_TRUE(sync.applied_ops(0)[0].SameEffect(Operation::Erase(1)));
  ASSERT_EQ(sync.applied_ops(1).size(), 1u);
  EXPECT_TRUE(sync.applied_ops(1)[0].SameEffect(Operation::Set(1, 4)));
  EXPECT_EQ(sync.server_state(), (Array{1, 4}));
}

TEST(SyncSystemTest, BugSurfacesAsMergeError) {
  MergeConfig config;
  config.enable_swap_move_bug = true;
  SyncSystem sync({1, 2, 3}, 2, config);
  ASSERT_TRUE(sync.ClientApply(0, Operation::Move(0, 2).At(0, 1)).ok());
  ASSERT_TRUE(sync.ClientApply(1, Operation::Swap(0, 2).At(0, 2)).ok());
  ASSERT_TRUE(sync.SyncClient(0).ok());
  auto s = sync.SyncClient(1);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), common::StatusCode::kResourceExhausted);
}

TEST(SyncSystemTest, RunsOnGoEngine) {
  otgo::GoMergeEngine go;
  SyncSystem sync({1, 2, 3}, 2, {}, &go);
  ASSERT_TRUE(sync.ClientApply(0, Operation::Set(2, 4).At(0, 1)).ok());
  ASSERT_TRUE(sync.ClientApply(1, Operation::Erase(1).At(0, 2)).ok());
  ASSERT_TRUE(sync.SyncAll().ok());
  EXPECT_EQ(sync.server_state(), (Array{1, 4}));
  EXPECT_TRUE(sync.AllConsistent());
}

TEST(FixtureTest, Figure9Example) {
  // The paper's Figure 9, verbatim.
  TransformArrayFixture fixture{2, {1, 2, 3}};
  fixture.transaction(0, Operation::Set(2, 4));
  fixture.transaction(1, Operation::Erase(1));
  fixture.sync_all_clients();
  fixture.check_array({1, 4});
  fixture.check_ops(0, {Operation::Erase(1)});
  fixture.check_ops(1, {Operation::Set(1, 4)});
  EXPECT_TRUE(fixture.ok()) << fixture.errors().front();
}

TEST(FixtureTest, ReportsMismatches) {
  TransformArrayFixture fixture{2, {1, 2, 3}};
  fixture.transaction(0, Operation::Set(0, 9));
  fixture.sync_all_clients();
  fixture.check_array({1, 2, 3});  // Wrong on purpose.
  EXPECT_FALSE(fixture.ok());
  EXPECT_FALSE(fixture.errors().empty());
}

TEST(HandwrittenSuiteTest, ExactlyThirtySix) {
  EXPECT_EQ(HandwrittenCases().size(), 36u);
}

TEST(HandwrittenSuiteTest, AllPassAndConverge) {
  for (const HandwrittenCase& c : HandwrittenCases()) {
    TransformArrayFixture fixture(static_cast<int>(c.client_ops.size()),
                                  c.initial);
    for (size_t i = 0; i < c.client_ops.size(); ++i) {
      fixture.transaction(static_cast<int>(i), c.client_ops[i]);
    }
    fixture.sync_all_clients();
    if (c.has_expected) fixture.check_array(c.expected);
    EXPECT_TRUE(fixture.ok())
        << c.name << ": " << (fixture.ok() ? "" : fixture.errors().front());
    EXPECT_TRUE(fixture.sync().AllConsistent()) << c.name;
  }
}

}  // namespace
}  // namespace xmodel::ot
