#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "repl/rollback_fuzzer.h"
#include "repl/scenarios.h"
#include "specs/raft_mongo_spec.h"
#include "specs/toy_specs.h"
#include "tlax/spec_coverage.h"
#include "trace/mbtc_pipeline.h"
#include "trace/snapshot_tracer.h"
#include "trace/trace_logger.h"

namespace xmodel::trace {
namespace {

using specs::RaftMongoConfig;
using specs::RaftMongoSpec;
using specs::RaftMongoVariant;

RaftMongoSpec UnboundedSpec(int num_nodes) {
  RaftMongoConfig config;
  config.variant = RaftMongoVariant::kDetailed;
  config.num_nodes = num_nodes;
  config.max_term = 1'000'000;
  config.max_oplog_len = 1'000'000;
  return RaftMongoSpec(config);
}

TEST(SpecCoverageTest, AccumulatesOverTraces) {
  // Counter spec: (limit+1)^2 reachable states.
  specs::CounterSpec spec(/*limit=*/3);
  tlax::SpecCoverage coverage;
  ASSERT_TRUE(coverage.Initialize(spec).ok());
  EXPECT_EQ(coverage.reachable_states(), 16u);
  EXPECT_EQ(coverage.covered_states(), 0u);

  auto full = [](int64_t x, int64_t y) {
    tlax::TraceState t;
    t.vars = {tlax::Value::Int(x), tlax::Value::Int(y)};
    return t;
  };
  // One straight-line trace covers 4 states.
  ASSERT_TRUE(
      coverage
          .AddTrace(spec, {full(0, 0), full(1, 0), full(2, 0), full(3, 0)})
          .ok());
  EXPECT_EQ(coverage.covered_states(), 4u);
  // A second, different trace extends coverage; overlapping states are
  // counted once.
  ASSERT_TRUE(coverage.AddTrace(spec, {full(0, 0), full(0, 1), full(1, 1)})
                  .ok());
  EXPECT_EQ(coverage.covered_states(), 6u);
  EXPECT_EQ(coverage.traces(), 2u);
  EXPECT_NEAR(coverage.Fraction(), 6.0 / 16.0, 1e-9);
  // Re-adding the same trace changes nothing.
  ASSERT_TRUE(coverage.AddTrace(spec, {full(0, 0), full(0, 1), full(1, 1)})
                  .ok());
  EXPECT_EQ(coverage.covered_states(), 6u);
}

TEST(SpecCoverageTest, PartialTracesCoverAllConsistentStates) {
  specs::CounterSpec spec(/*limit=*/2);
  tlax::SpecCoverage coverage;
  ASSERT_TRUE(coverage.Initialize(spec).ok());
  // Only x observed: every y consistent with the trace is covered.
  tlax::TraceState t0, t1;
  t0.vars = {tlax::Value::Int(0), std::nullopt};
  t1.vars = {tlax::Value::Int(1), std::nullopt};
  ASSERT_TRUE(coverage.AddTrace(spec, {t0, t1}).ok());
  // Position 0 matches (0,0); position 1 matches (1,0) plus a stutter/step
  // fan-out across hidden y values along the way.
  EXPECT_GE(coverage.covered_states(), 2u);
}

TEST(SpecCoverageTest, RejectsIllegalTrace) {
  specs::CounterSpec spec(/*limit=*/2);
  tlax::SpecCoverage coverage;
  ASSERT_TRUE(coverage.Initialize(spec).ok());
  tlax::TraceState bad;
  bad.vars = {tlax::Value::Int(7), tlax::Value::Int(7)};
  EXPECT_FALSE(coverage.AddTrace(spec, {bad}).ok());
}

TEST(SpecCoverageTest, ScenarioTracesCoverRaftMongoSpace) {
  // The paper's unbuilt CI metric (§4.2.4): accumulate coverage of the
  // bounded spec space across all scenario traces.
  RaftMongoConfig config;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  RaftMongoSpec bounded(config);
  tlax::SpecCoverage coverage;
  ASSERT_TRUE(coverage.Initialize(bounded).ok());
  EXPECT_GT(coverage.reachable_states(), 40'000u);  // Constrained states only.

  RaftMongoSpec unbounded = UnboundedSpec(3);
  int accumulated = 0;
  for (const repl::Scenario& scenario : repl::BaseScenarios()) {
    if (scenario.uses_arbiters || scenario.exhibits_two_leaders) continue;
    if (scenario.name == "initial_sync_quorum_bug") continue;
    if (scenario.config.num_nodes != 3) continue;
    repl::ReplicaSet rs(scenario.config);
    TraceLogger logger(&rs.clock());
    rs.AttachTraceSink(&logger);
    ASSERT_TRUE(scenario.run(rs).ok()) << scenario.name;
    auto merged = MergeLogs(logger.LogFiles(rs.num_nodes()));
    ASSERT_TRUE(merged.ok());
    EventProcessorOptions po;
    po.num_nodes = 3;
    ProcessedTrace processed = EventProcessor(po).Process(*merged);
    ASSERT_TRUE(processed.ok());
    auto trace = MbtcPipeline::ToTraceStates(processed.states);
    // Coverage accumulation tolerates traces that wander outside the
    // bounded space; it only counts in-space states.
    if (coverage.AddTrace(bounded, trace).ok()) ++accumulated;
  }
  EXPECT_GT(accumulated, 3);
  EXPECT_GT(coverage.covered_states(), 10u);
  // Handwritten tests cover a sliver of the space — the paper's reason to
  // want the metric in CI.
  EXPECT_LT(coverage.Fraction(), 0.05);
}

TEST(TraceLoggerFileTest, WriteAndReadRoundTrip) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "xmodel_trace_logs";
  fs::create_directories(dir);

  repl::ReplicaSetConfig config;
  repl::ReplicaSet rs(config);
  TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  ASSERT_TRUE(rs.TryElect(0).ok());
  ASSERT_TRUE(rs.ClientWrite(0, "w").ok());
  rs.CatchUpAll();

  ASSERT_TRUE(logger.WriteLogFiles(dir.string(), rs.num_nodes()).ok());
  auto read_back = TraceLogger::ReadLogFiles(dir.string());
  ASSERT_TRUE(read_back.ok()) << read_back.status().ToString();
  EXPECT_EQ(*read_back, logger.LogFiles(rs.num_nodes()));

  // And the pipeline accepts the on-disk logs.
  RaftMongoSpec spec = UnboundedSpec(rs.num_nodes());
  MbtcPipelineOptions options;
  options.checker.allow_stuttering = true;
  MbtcPipeline pipeline(&spec, options);
  EXPECT_TRUE(pipeline.Run(*read_back).passed());
  fs::remove_all(dir);
}

TEST(TraceLoggerFileTest, MissingDirectoryRejected) {
  EXPECT_FALSE(TraceLogger::ReadLogFiles("/nonexistent/xmodel").ok());
  repl::SimClock clock;
  TraceLogger logger(&clock);
  EXPECT_FALSE(logger.WriteLogFiles("/nonexistent/xmodel", 3).ok());
}

TEST(SnapshotTracerTest, ConformingRunChecks) {
  // The §6 idea: capture whole-set snapshots between driver calls; the
  // hidden-step search explains multi-transition calls.
  repl::ReplicaSetConfig config;
  repl::ReplicaSet rs(config);
  SnapshotTracer tracer(&rs);

  ASSERT_TRUE(rs.TryElect(0).ok());
  tracer.Capture();
  ASSERT_TRUE(rs.ClientWrite(0, "a").ok());
  tracer.Capture();
  ASSERT_TRUE(rs.ClientWrite(0, "b").ok());
  tracer.Capture();
  for (int n = 1; n < 3; ++n) {
    rs.ReplicateFrom(n, 0);
    tracer.Capture();
  }
  rs.GossipAll();
  tracer.Capture();

  RaftMongoSpec spec = UnboundedSpec(3);
  auto result = tracer.Check(spec);
  EXPECT_TRUE(result.ok()) << result.status.ToString() << " at step "
                           << result.failed_step;
  EXPECT_GT(tracer.num_snapshots(), 4u);
}

TEST(SnapshotTracerTest, SeesThroughInitialSync) {
  // The event-based tracer cannot observe the initial-sync data image
  // (the "Copying the oplog" discrepancy needed post-processing repairs);
  // snapshots read the durable state directly, so no repair is needed.
  repl::ReplicaSetConfig config;
  config.initial_sync_oplog_window = 1;
  repl::ReplicaSet rs(config);
  SnapshotTracer tracer(&rs);

  ASSERT_TRUE(rs.TryElect(0).ok());
  tracer.Capture();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rs.ClientWrite(0, "w").ok());
    tracer.Capture();
  }
  rs.CatchUpAll();
  tracer.Capture();
  ASSERT_TRUE(rs.StartInitialSync(2).ok());
  tracer.Capture();
  ASSERT_TRUE(rs.FinishInitialSync(2).ok());
  tracer.Capture();
  rs.CatchUpAll();
  tracer.Capture();

  RaftMongoSpec spec = UnboundedSpec(3);
  auto result = tracer.Check(spec, /*max_hidden_steps=*/12);
  EXPECT_TRUE(result.ok()) << result.status.ToString() << " at step "
                           << result.failed_step;
}

TEST(SnapshotTracerTest, QuorumBugStillCaught) {
  // Snapshot tracing must not mask the real bug: the commit-point
  // regression after the non-durable "commit" remains unexplainable.
  repl::ReplicaSetConfig config;
  config.count_initial_sync_in_quorum = true;
  repl::ReplicaSet rs(config);
  SnapshotTracer tracer(&rs);

  ASSERT_TRUE(rs.TryElect(0).ok());
  tracer.Capture();
  ASSERT_TRUE(rs.ClientWrite(0, "base").ok());
  tracer.Capture();
  rs.CatchUpAll();
  tracer.Capture();
  rs.network().Partition({{0, 2}});
  ASSERT_TRUE(rs.StartInitialSync(2).ok());
  tracer.Capture();
  ASSERT_TRUE(rs.ClientWrite(0, "not-durable").ok());
  tracer.Capture();
  rs.ReplicateFrom(2, 0);
  tracer.Capture();
  ASSERT_EQ(rs.node(0).commit_point(), (repl::OpTime{1, 2}));
  rs.CrashNode(0, /*unclean=*/false);
  rs.network().Heal();
  ASSERT_TRUE(rs.StartInitialSync(2).ok());
  ASSERT_TRUE(rs.FinishInitialSync(2).ok());
  tracer.Capture();
  ASSERT_TRUE(rs.TryElect(1).ok());
  tracer.Capture();
  ASSERT_TRUE(rs.ClientWrite(1, "after-loss").ok());
  tracer.Capture();
  rs.RestartNode(0);
  rs.GossipAll();
  tracer.Capture();
  rs.CatchUpAll();
  tracer.Capture();

  RaftMongoSpec spec = UnboundedSpec(3);
  auto result = tracer.Check(spec, /*max_hidden_steps=*/12);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace xmodel::trace

namespace xmodel::trace {
namespace {

TEST(SymmetryTest, ReducesRaftMongoStateSpace) {
  // TLC's SYMMETRY sets (via Tasiran et al., paper §3): node identities
  // are interchangeable, so one representative per orbit suffices.
  specs::RaftMongoConfig config;
  config.num_nodes = 3;
  config.max_term = 2;
  config.max_oplog_len = 2;
  specs::RaftMongoSpec plain(config);
  config.use_symmetry = true;
  specs::RaftMongoSpec symmetric(config);

  auto plain_result = tlax::ModelChecker().Check(plain);
  auto symmetric_result = tlax::ModelChecker().Check(symmetric);
  ASSERT_TRUE(plain_result.status.ok());
  ASSERT_TRUE(symmetric_result.status.ok());
  EXPECT_FALSE(plain_result.violation.has_value());
  EXPECT_FALSE(symmetric_result.violation.has_value());
  // Up to |perm(3)| = 6x reduction; in practice 3-6x.
  EXPECT_LT(symmetric_result.distinct_states,
            plain_result.distinct_states / 2);
  EXPECT_GT(symmetric_result.distinct_states,
            plain_result.distinct_states / 7);
}

TEST(SymmetryTest, CanonicalFormIsPermutationInvariant) {
  specs::RaftMongoConfig config;
  config.use_symmetry = true;
  specs::RaftMongoSpec spec(config);
  tlax::State a = specs::RaftMongoSpec::MakeState(
      {"Leader", "Follower", "Follower"}, {2, 1, 1},
      {{1, 1}, {0, 0}, {0, 0}}, {{1, 2}, {1}, {}});
  // The same configuration with nodes relabeled.
  tlax::State b = specs::RaftMongoSpec::MakeState(
      {"Follower", "Follower", "Leader"}, {1, 1, 2},
      {{0, 0}, {0, 0}, {1, 1}}, {{}, {1}, {1, 2}});
  EXPECT_EQ(spec.Canonicalize(a), spec.Canonicalize(b));
  // Canonicalization is idempotent.
  EXPECT_EQ(spec.Canonicalize(spec.Canonicalize(a)), spec.Canonicalize(a));
}

TEST(ViewCoverageTest, ViewCollapsesQualitativelySameStates) {
  // TLC's VIEW: measure coverage over an abstraction. Here the view keeps
  // only the x counter, collapsing all y values.
  specs::CounterSpec spec(/*limit=*/3);
  tlax::SpecCoverage coverage;
  coverage.set_view([](const tlax::State& s) { return s.var(0); });
  ASSERT_TRUE(coverage.Initialize(spec).ok());
  EXPECT_EQ(coverage.reachable_states(), 4u);  // x in 0..3.

  auto full = [](int64_t x, int64_t y) {
    tlax::TraceState t;
    t.vars = {tlax::Value::Int(x), tlax::Value::Int(y)};
    return t;
  };
  ASSERT_TRUE(coverage.AddTrace(spec, {full(0, 0), full(0, 1)}).ok());
  EXPECT_EQ(coverage.covered_states(), 1u);  // Only x = 0 seen.
  ASSERT_TRUE(coverage.AddTrace(spec, {full(0, 0), full(1, 0)}).ok());
  EXPECT_EQ(coverage.covered_states(), 2u);
  EXPECT_NEAR(coverage.Fraction(), 0.5, 1e-9);
}

}  // namespace
}  // namespace xmodel::trace
