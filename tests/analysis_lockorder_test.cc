// Tests for the lock-order analysis: a known acquisition-order cycle is
// reported as a potential deadlock, a hierarchy-respecting stream passes,
// and hierarchy violations are flagged.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lock_order.h"
#include "repl/lock_manager.h"

namespace xmodel::analysis {
namespace {

using repl::LockEvent;
using repl::LockMode;
using repl::ResourceId;
using repl::ResourceLevel;

ResourceId Global() { return ResourceId{ResourceLevel::kGlobal, ""}; }
ResourceId Db(const std::string& name) {
  return ResourceId{ResourceLevel::kDatabase, name};
}

LockEvent Acquire(int64_t opctx, ResourceId resource, LockMode mode) {
  return LockEvent{LockEvent::Type::kAcquire, opctx, std::move(resource),
                   mode};
}

LockEvent Release(int64_t opctx, ResourceId resource, LockMode mode) {
  return LockEvent{LockEvent::Type::kRelease, opctx, std::move(resource),
                   mode};
}

TEST(LockOrderTest, DetectsAcquisitionOrderCycle) {
  // ctx1 locks database A then B; ctx2 locks B then A. Under a blocking
  // acquisition semantics this is the classic ABBA deadlock.
  std::vector<LockEvent> events;
  for (int64_t ctx : {1, 2}) {
    events.push_back(
        Acquire(ctx, Global(), LockMode::kIntentExclusive));
  }
  events.push_back(Acquire(1, Db("A"), LockMode::kExclusive));
  events.push_back(Acquire(1, Db("B"), LockMode::kExclusive));
  events.push_back(Acquire(2, Db("B"), LockMode::kExclusive));
  events.push_back(Acquire(2, Db("A"), LockMode::kExclusive));

  LockOrderReport report = AnalyzeLockOrder(events, "abba");
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.cycles.size(), 1u);

  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == "lock-order-cycle") {
      EXPECT_EQ(d.severity, Severity::kError);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // The cycle is over the two databases, not the shared global parent
  // (both contexts acquire Global first, a consistent order).
  const std::vector<ResourceId>& cycle = report.cycles[0];
  EXPECT_EQ(cycle.size(), 2u);
  for (const ResourceId& r : cycle) {
    EXPECT_EQ(r.level, ResourceLevel::kDatabase);
  }
}

TEST(LockOrderTest, CleanHierarchyPasses) {
  // Both contexts acquire in the same global -> A -> B order and release
  // leaf-first: no cycle, no hierarchy violation.
  std::vector<LockEvent> events;
  for (int64_t ctx : {1, 2}) {
    events.push_back(Acquire(ctx, Global(), LockMode::kIntentShared));
    events.push_back(Acquire(ctx, Db("A"), LockMode::kShared));
    events.push_back(Acquire(ctx, Db("B"), LockMode::kShared));
    events.push_back(Release(ctx, Db("B"), LockMode::kShared));
    events.push_back(Release(ctx, Db("A"), LockMode::kShared));
    events.push_back(Release(ctx, Global(), LockMode::kIntentShared));
  }
  LockOrderReport report = AnalyzeLockOrder(events, "clean");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.cycles.empty());
  EXPECT_TRUE(report.diagnostics.empty());
  // Order edges exist (global -> A, global -> B, A -> B) but are benign.
  EXPECT_EQ(report.edges.size(), 3u);
}

TEST(LockOrderTest, FlagsHierarchyViolation) {
  // Locking a database without any intent lock on the global resource.
  std::vector<LockEvent> events = {
      Acquire(7, Db("payroll"), LockMode::kExclusive)};
  LockOrderReport report = AnalyzeLockOrder(events, "orphan");
  EXPECT_FALSE(report.ok());
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == "hierarchy-violation") {
      EXPECT_EQ(d.severity, Severity::kError);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LockOrderTest, FlagsReleaseWithoutAcquire) {
  std::vector<LockEvent> events = {
      Release(3, Global(), LockMode::kIntentShared)};
  LockOrderReport report = AnalyzeLockOrder(events, "stray-release");
  EXPECT_TRUE(report.ok()) << "warning, not error";
  bool found = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == "release-without-acquire") {
      EXPECT_EQ(d.severity, Severity::kWarning);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LockOrderTest, RealLockManagerStreamIsClean) {
  // Events observed from the actual LockManager must satisfy the analysis:
  // the manager enforces the hierarchy discipline the analysis checks.
  repl::LockManager manager;
  std::vector<LockEvent> events;
  manager.SetEventObserver(
      [&events](const LockEvent& e) { events.push_back(e); });

  ASSERT_TRUE(
      manager.Acquire(1, Global(), LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(manager.Acquire(1, Db("db"), LockMode::kIntentExclusive).ok());
  ASSERT_TRUE(
      manager
          .Acquire(1, ResourceId{ResourceLevel::kCollection, "db.coll"},
                   LockMode::kExclusive)
          .ok());
  manager.ReleaseAll(1);

  LockOrderReport report = AnalyzeLockOrder(events, "lock-manager");
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.cycles.empty());
}

}  // namespace
}  // namespace xmodel::analysis
