#include <gtest/gtest.h>

#include "repl/scheduler.h"
#include "repl/timed_driver.h"
#include "specs/raft_mongo_spec.h"
#include "trace/mbtc_pipeline.h"
#include "trace/trace_logger.h"

namespace xmodel::repl {
namespace {

TEST(SchedulerTest, FiresInTimeOrder) {
  SimClock clock;
  Scheduler scheduler(&clock);
  std::vector<int> order;
  scheduler.ScheduleAfter(30, [&] { order.push_back(3); });
  scheduler.ScheduleAfter(10, [&] { order.push_back(1); });
  scheduler.ScheduleAfter(20, [&] { order.push_back(2); });
  scheduler.RunUntil(clock.NowMs() + 100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, SimultaneousEventsFifo) {
  SimClock clock;
  Scheduler scheduler(&clock);
  std::vector<int> order;
  scheduler.ScheduleAfter(5, [&] { order.push_back(1); });
  scheduler.ScheduleAfter(5, [&] { order.push_back(2); });
  scheduler.RunFor(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, PeriodicAndCancel) {
  SimClock clock;
  Scheduler scheduler(&clock);
  int fired = 0;
  uint64_t id = scheduler.SchedulePeriodic(10, [&] { ++fired; });
  scheduler.RunFor(55);
  EXPECT_EQ(fired, 5);
  EXPECT_TRUE(scheduler.Cancel(id));
  scheduler.RunFor(50);
  EXPECT_EQ(fired, 5);
  EXPECT_FALSE(scheduler.Cancel(id));
}

TEST(SchedulerTest, CallbackMayScheduleMore) {
  SimClock clock;
  Scheduler scheduler(&clock);
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 4) scheduler.ScheduleAfter(5, step);
  };
  scheduler.ScheduleAfter(5, step);
  scheduler.RunFor(100);
  EXPECT_EQ(chain, 4);
}

TEST(SchedulerTest, RunNextAdvancesClock) {
  SimClock clock;
  Scheduler scheduler(&clock);
  int64_t start = clock.NowMs();
  bool fired = false;
  scheduler.ScheduleAfter(42, [&] { fired = true; });
  EXPECT_TRUE(scheduler.RunNext());
  EXPECT_TRUE(fired);
  EXPECT_EQ(clock.NowMs(), start + 42);
  EXPECT_FALSE(scheduler.RunNext());
}

TEST(TimedDriverTest, LeaderEmergesAutonomously) {
  ReplicaSetConfig config;
  ReplicaSet rs(config);
  Scheduler scheduler(&rs.clock());
  common::Rng rng(5);
  TimedDriver driver(&rs, &scheduler, &rng);
  driver.Start();

  EXPECT_TRUE(rs.Leaders().empty());
  scheduler.RunFor(500);
  ASSERT_EQ(rs.Leaders().size(), 1u);
  EXPECT_GT(driver.elections_started(), 0);

  // Writes flow and commit without any manual pumping.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(driver.ClientWrite("w").ok());
  }
  scheduler.RunFor(500);
  int leader = rs.NewestLeader();
  EXPECT_EQ(rs.node(leader).commit_point().index, 3);
  for (int n = 0; n < rs.num_nodes(); ++n) {
    EXPECT_EQ(rs.node(n).oplog().size(), 3u) << "node " << n;
  }
}

TEST(TimedDriverTest, FailoverOnLeaderCrash) {
  ReplicaSetConfig config;
  ReplicaSet rs(config);
  Scheduler scheduler(&rs.clock());
  common::Rng rng(9);
  TimedDriver driver(&rs, &scheduler, &rng);
  driver.Start();
  scheduler.RunFor(500);
  int old_leader = rs.NewestLeader();
  ASSERT_GE(old_leader, 0);
  ASSERT_TRUE(driver.ClientWrite("committed").ok());
  scheduler.RunFor(300);

  rs.CrashNode(old_leader, /*unclean=*/false);
  scheduler.RunFor(1000);
  int new_leader = rs.NewestLeader();
  ASSERT_GE(new_leader, 0);
  EXPECT_NE(new_leader, old_leader);
  // The committed write survived the failover.
  EXPECT_TRUE(rs.node(new_leader).oplog().size() >= 1);
  EXPECT_TRUE(rs.CommittedWritesDurable());
}

TEST(TimedDriverTest, MinorityLeaderStepsDown) {
  ReplicaSetConfig config;
  config.num_nodes = 5;
  ReplicaSet rs(config);
  Scheduler scheduler(&rs.clock());
  common::Rng rng(11);
  TimedDriver driver(&rs, &scheduler, &rng);
  driver.Start();
  scheduler.RunFor(500);
  int leader = rs.NewestLeader();
  ASSERT_GE(leader, 0);

  // Strand the leader with one follower.
  int buddy = (leader + 1) % 5;
  rs.network().Partition({{leader, buddy}});
  scheduler.RunFor(1500);
  // The stranded leader stepped down; the majority elected a new one.
  EXPECT_EQ(rs.node(leader).role(), Role::kFollower);
  EXPECT_GT(driver.stepdowns_forced(), 0);
  int new_leader = rs.NewestLeader();
  ASSERT_GE(new_leader, 0);
  EXPECT_NE(new_leader, leader);

  // Heal; everyone converges.
  rs.network().Heal();
  scheduler.RunFor(1000);
  EXPECT_EQ(rs.Leaders().size(), 1u);
  EXPECT_TRUE(rs.CommittedWritesDurable());
}

TEST(TimedDriverTest, AutonomousRunIsTraceCheckable) {
  // The full stack: autonomous timed cluster + fault injection, traced and
  // checked against the spec.
  ReplicaSetConfig config;
  ReplicaSet rs(config);
  trace::TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  Scheduler scheduler(&rs.clock());
  common::Rng rng(3);
  TimedDriverOptions options;
  TimedDriver driver(&rs, &scheduler, &rng, options);
  driver.Start();

  scheduler.RunFor(600);
  driver.ClientWrite("a").ok();
  scheduler.RunFor(200);
  int leader = rs.NewestLeader();
  if (leader >= 0) {
    rs.CrashNode(leader, /*unclean=*/false);
  }
  scheduler.RunFor(1200);
  driver.ClientWrite("b").ok();
  scheduler.RunFor(600);
  if (leader >= 0) rs.RestartNode(leader);
  scheduler.RunFor(800);

  specs::RaftMongoConfig spec_config;
  spec_config.num_nodes = rs.num_nodes();
  spec_config.max_term = 1'000'000;
  spec_config.max_oplog_len = 1'000'000;
  specs::RaftMongoSpec spec(spec_config);
  trace::MbtcPipelineOptions popts;
  popts.checker.allow_stuttering = true;
  trace::MbtcPipeline pipeline(&spec, popts);
  auto report = pipeline.Run(logger.LogFiles(rs.num_nodes()));
  EXPECT_TRUE(report.passed())
      << "step " << report.check.failed_step << " of " << report.num_events
      << ": " << report.check.status.ToString();
  EXPECT_GT(report.num_events, 10u);
}

}  // namespace
}  // namespace xmodel::repl
