#include <gtest/gtest.h>

#include "specs/toy_specs.h"
#include "tlax/tla_text.h"
#include "tlax/trace_check.h"

namespace xmodel::tlax {
namespace {

using specs::CounterSpec;

TraceState Full(int64_t x, int64_t y) {
  TraceState s;
  s.vars = {Value::Int(x), Value::Int(y)};
  return s;
}

TraceState OnlyX(int64_t x) {
  TraceState s;
  s.vars = {Value::Int(x), std::nullopt};
  return s;
}

TEST(TlaTextTest, ParseScalars) {
  EXPECT_EQ(*ParseTlaValue("42"), Value::Int(42));
  EXPECT_EQ(*ParseTlaValue("-7"), Value::Int(-7));
  EXPECT_EQ(*ParseTlaValue("TRUE"), Value::Bool(true));
  EXPECT_EQ(*ParseTlaValue("FALSE"), Value::Bool(false));
  EXPECT_EQ(*ParseTlaValue("NULL"), Value::Nil());
  EXPECT_EQ(*ParseTlaValue("\"Leader\""), Value::Str("Leader"));
}

TEST(TlaTextTest, ParseComposites) {
  EXPECT_EQ(*ParseTlaValue("<<1, 2>>"),
            Value::Seq({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(*ParseTlaValue("<<>>"), Value::EmptySeq());
  EXPECT_EQ(*ParseTlaValue("{2, 1}"),
            Value::SetOf({Value::Int(1), Value::Int(2)}));
  EXPECT_EQ(*ParseTlaValue("[ndx |-> 3, val |-> \"a\"]"),
            Value::Record({{"ndx", Value::Int(3)}, {"val", Value::Str("a")}}));
  EXPECT_EQ(*ParseTlaValue("<<<<1>>, <<>>>>"),
            Value::Seq({Value::Seq({Value::Int(1)}), Value::EmptySeq()}));
}

TEST(TlaTextTest, RoundTripsArbitraryValues) {
  std::vector<Value> values = {
      Value::Nil(),
      Value::Int(-12),
      Value::Str("x y"),
      Value::Seq({Value::Record({{"a", Value::SetOf({Value::Int(1)})}}),
                  Value::Bool(false)}),
  };
  for (const Value& v : values) {
    auto parsed = ParseTlaValue(v.ToTla());
    ASSERT_TRUE(parsed.ok()) << v.ToTla();
    EXPECT_EQ(*parsed, v) << v.ToTla();
  }
}

TEST(TlaTextTest, ParseErrors) {
  EXPECT_FALSE(ParseTlaValue("<<1,").ok());
  EXPECT_FALSE(ParseTlaValue("junk").ok());
  EXPECT_FALSE(ParseTlaValue("[x 3]").ok());
  EXPECT_FALSE(ParseTlaValue("1 2").ok());
  EXPECT_FALSE(ParseTlaValue("\"open").ok());
}

TEST(TlaTextTest, TraceModuleRoundTrip) {
  std::vector<TraceState> trace = {Full(0, 0), OnlyX(1), Full(1, 1)};
  std::string text = TraceModuleText("Trace", {"x", "y"}, trace);
  EXPECT_NE(text.find("MODULE Trace"), std::string::npos);
  EXPECT_NE(text.find("Trace == <<"), std::string::npos);

  auto parsed = ParseTraceModule(text, 2);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ(*(*parsed)[0].vars[0], Value::Int(0));
  EXPECT_FALSE((*parsed)[1].vars[1].has_value());
  EXPECT_EQ(*(*parsed)[2].vars[1], Value::Int(1));
}

TEST(TlaTextTest, EmptyTraceModule) {
  std::string text = TraceModuleText("Trace", {"x", "y"}, {});
  auto parsed = ParseTraceModule(text, 2);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(TraceCheckTest, AcceptsLegalTrace) {
  CounterSpec spec(/*limit=*/5);
  std::vector<TraceState> trace = {Full(0, 0), Full(1, 0), Full(1, 1),
                                   Full(2, 1)};
  TraceChecker checker;
  TraceCheckResult result = checker.Check(spec, trace);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  ASSERT_EQ(result.step_actions.size(), 4u);
  EXPECT_EQ(result.step_actions[0], std::vector<std::string>{"Init"});
  EXPECT_EQ(result.step_actions[1], std::vector<std::string>{"IncrementX"});
  EXPECT_EQ(result.step_actions[2], std::vector<std::string>{"IncrementY"});
}

TEST(TraceCheckTest, RejectsIllegalStep) {
  CounterSpec spec(/*limit=*/5);
  // x jumps by 2: no single action explains it.
  std::vector<TraceState> trace = {Full(0, 0), Full(2, 0)};
  TraceChecker checker;
  TraceCheckResult result = checker.Check(spec, trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failed_step, 1u);
}

TEST(TraceCheckTest, RejectsBadInitialState) {
  CounterSpec spec(/*limit=*/5);
  std::vector<TraceState> trace = {Full(3, 3)};
  TraceCheckResult result = TraceChecker().Check(spec, trace);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.failed_step, 0u);
}

TEST(TraceCheckTest, PartialStatesAreExistential) {
  CounterSpec spec(/*limit=*/5);
  // y is never logged; the checker must find an assignment. x goes 0,1,1 —
  // the middle step must be explained by IncrementY (y changed, unobserved).
  std::vector<TraceState> trace = {OnlyX(0), OnlyX(1), OnlyX(1), OnlyX(2)};
  TraceCheckResult result = TraceChecker().Check(spec, trace);
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result.step_actions[2], std::vector<std::string>{"IncrementY"});
}

TEST(TraceCheckTest, StutteringOption) {
  CounterSpec spec(/*limit=*/5);
  std::vector<TraceState> trace = {Full(0, 0), Full(0, 0), Full(1, 0)};
  // Without stuttering the duplicate state cannot be explained.
  TraceCheckResult strict = TraceChecker().Check(spec, trace);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.failed_step, 1u);

  TraceCheckOptions options;
  options.allow_stuttering = true;
  TraceCheckResult lax = TraceChecker(options).Check(spec, trace);
  EXPECT_TRUE(lax.ok());
}

TEST(TraceCheckTest, EmptyTraceIsLegal) {
  CounterSpec spec(/*limit=*/2);
  EXPECT_TRUE(TraceChecker().Check(spec, {}).ok());
}

TEST(TraceCheckTest, PresslerModeAgreesWithNative) {
  CounterSpec spec(/*limit=*/4);
  std::vector<TraceState> good = {Full(0, 0), Full(0, 1), Full(1, 1)};
  std::vector<TraceState> bad = {Full(0, 0), Full(0, 1), Full(2, 1)};

  TraceCheckOptions pressler;
  pressler.mode = TraceCheckMode::kPresslerReparse;
  EXPECT_TRUE(TraceChecker(pressler).Check(spec, good).ok());
  TraceCheckResult failed = TraceChecker(pressler).Check(spec, bad);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.failed_step, 2u);
}

TEST(TraceCheckTest, CheckModuleNative) {
  CounterSpec spec(/*limit=*/4);
  std::vector<TraceState> trace = {Full(0, 0), Full(1, 0)};
  std::string module = TraceModuleText("Trace", spec.variables(), trace);
  TraceCheckResult result = TraceChecker().CheckModule(spec, module);
  EXPECT_TRUE(result.ok()) << result.status.ToString();
}

TEST(TraceCheckTest, CheckModuleRejectsGarbage) {
  CounterSpec spec(/*limit=*/4);
  TraceCheckResult result = TraceChecker().CheckModule(spec, "not a module");
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), common::StatusCode::kCorruption);
}

}  // namespace
}  // namespace xmodel::tlax
