#include "obs/span.h"

#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "common/json.h"

namespace xmodel::obs {
namespace {

// The span tracer is a process-wide singleton; each test leaves it
// disabled and cleared.
class SpanTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SpanTracer::Global().Disable();
    SpanTracer::Global().Clear();
  }
};

TEST_F(SpanTest, DisabledTracerRecordsNothing) {
  ASSERT_FALSE(SpanTracer::Global().enabled());
  {
    XMODEL_SPAN("test.noop");
  }
  EXPECT_EQ(SpanTracer::Global().size(), 0u);
}

TEST_F(SpanTest, RecordsNestedSpansWithDepthAndDuration) {
  common::FakeMonotonicClock clock;
  SpanTracer::Global().Enable(&clock);
  {
    XMODEL_SPAN("test.outer");
    clock.AdvanceMicros(100);
    {
      XMODEL_SPAN("test.inner");
      clock.AdvanceMicros(30);
    }
    clock.AdvanceMicros(5);
  }
  SpanTracer::Global().Disable();

  std::vector<SpanRecord> spans = SpanTracer::Global().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans record at close, so the inner span lands first.
  EXPECT_STREQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[0].duration_us, 30);
  EXPECT_STREQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_EQ(spans[1].duration_us, 135);
  EXPECT_EQ(spans[0].tid, spans[1].tid);
}

TEST_F(SpanTest, SpanOpenedWhileDisabledStaysNoOp) {
  common::FakeMonotonicClock clock;
  {
    ScopedSpan span("test.pre_enable");
    // Enabling mid-span must not record a half-measured span.
    SpanTracer::Global().Enable(&clock);
    clock.AdvanceMicros(10);
  }
  EXPECT_EQ(SpanTracer::Global().size(), 0u);
}

TEST_F(SpanTest, ChromeJsonIsWellFormed) {
  common::FakeMonotonicClock clock;
  clock.AdvanceMicros(500);  // Nonzero origin: ts must be rebased.
  SpanTracer::Global().Enable(&clock);
  {
    XMODEL_SPAN("test.phase");
    clock.AdvanceMicros(40);
  }
  SpanTracer::Global().Disable();

  common::Json doc = SpanTracer::Global().ToChromeJson();
  auto parsed = common::Json::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const common::Json* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array().size(), 1u);
  const common::Json& event = events->array()[0];
  EXPECT_EQ(event.Find("name")->string_value(), "test.phase");
  EXPECT_EQ(event.Find("ph")->string_value(), "X");
  EXPECT_EQ(event.Find("ts")->int_value(), 0);  // Rebased to the first span.
  EXPECT_EQ(event.Find("dur")->int_value(), 40);
  EXPECT_NE(event.Find("pid"), nullptr);
  EXPECT_NE(event.Find("tid"), nullptr);
}

TEST_F(SpanTest, ClearDropsBufferedSpans) {
  common::FakeMonotonicClock clock;
  SpanTracer::Global().Enable(&clock);
  {
    XMODEL_SPAN("test.cleared");
  }
  EXPECT_EQ(SpanTracer::Global().size(), 1u);
  SpanTracer::Global().Clear();
  EXPECT_EQ(SpanTracer::Global().size(), 0u);
  EXPECT_EQ(SpanTracer::Global().ToChromeJson().Find("traceEvents")->array().size(),
            0u);
}

}  // namespace
}  // namespace xmodel::obs
