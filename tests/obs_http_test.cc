#include "obs/http.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/watchdog.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"
#include "tlax/spec.h"
#include "tlax/state.h"

namespace xmodel::obs {
namespace {

using common::FakeMonotonicClock;

// A minimal blocking HTTP client for 127.0.0.1: sends `raw` verbatim and
// returns everything the server writes back (the server always closes the
// connection after one response, so read-to-EOF is the framing).
std::string RawRequest(int port, const std::string& raw) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& target) {
  return RawRequest(port,
                    "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n");
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..." — the status code is the second token.
  size_t space = response.find(' ');
  if (space == std::string::npos) return -1;
  return std::atoi(response.c_str() + space + 1);
}

std::string BodyOf(const std::string& response) {
  size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

// The value of a Prometheus sample line "name value\n", or -1 when absent.
double PromValue(const std::string& body, const std::string& name) {
  size_t pos = 0;
  while ((pos = body.find(name + " ", pos)) != std::string::npos) {
    if (pos == 0 || body[pos - 1] == '\n') {
      return std::atof(body.c_str() + pos + name.size() + 1);
    }
    ++pos;
  }
  return -1;
}

// A one-variable chain spec (x: 0 -> limit) whose action sleeps a little
// per expansion, so a full check spans many level barriers over enough
// wall time for a scraper to observe intermediate states. Observability
// must never change results, so the sleep lives in the spec, not the
// checker.
class SlowChainSpec : public tlax::Spec {
 public:
  explicit SlowChainSpec(int64_t limit) : variables_{"x"} {
    actions_.push_back(tlax::Action{
        "Step", [limit](const tlax::State& s, std::vector<tlax::State>* out) {
          std::this_thread::sleep_for(std::chrono::milliseconds(3));
          if (s.var(0).int_value() < limit) {
            out->push_back(
                s.With(0, tlax::Value::Int(s.var(0).int_value() + 1)));
          }
        }});
    invariants_.push_back(tlax::Invariant{
        "True", [](const tlax::State&) { return true; }});
  }
  std::string name() const override { return "SlowChain"; }
  const std::vector<std::string>& variables() const override {
    return variables_;
  }
  std::vector<tlax::State> InitialStates() const override {
    return {tlax::State({tlax::Value::Int(0)})};
  }
  const std::vector<tlax::Action>& actions() const override {
    return actions_;
  }
  const std::vector<tlax::Invariant>& invariants() const override {
    return invariants_;
  }

 private:
  std::vector<std::string> variables_;
  std::vector<tlax::Action> actions_;
  std::vector<tlax::Invariant> invariants_;
};

TEST(HttpServerTest, ServesRegisteredPathsAndRejectsTheRest) {
  HttpServer server;
  server.Handle("/hello", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "hi " + std::string(request.QueryOr("name", "world"));
    return response;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);

  std::string ok = Get(server.port(), "/hello?name=checker");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_EQ(BodyOf(ok), "hi checker");
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  EXPECT_EQ(StatusOf(Get(server.port(), "/nope")), 404);
  EXPECT_EQ(StatusOf(RawRequest(
                server.port(),
                "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n")),
            405);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, MalformedRequestsGet400WithoutCrashing) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "pong"};
  });
  ASSERT_TRUE(server.Start(0).ok());

  // Raw garbage, a bare newline, and a truncated request line must all be
  // answered (or dropped) without taking the server down.
  EXPECT_EQ(StatusOf(RawRequest(server.port(), "garbage\r\n\r\n")), 400);
  EXPECT_EQ(StatusOf(RawRequest(server.port(), "\r\n\r\n")), 400);
  EXPECT_EQ(StatusOf(RawRequest(server.port(), "GET\r\n\r\n")), 400);

  // The server survives and still serves real requests.
  std::string ok = Get(server.port(), "/ping");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_EQ(BodyOf(ok), "pong");
  server.Stop();
}

TEST(ObsServerTest, IndexMetricsProgressAndEventsEndpoints) {
  MetricsRegistry registry;
  registry.GetCounter("test.requests.seen").Increment(7);
  FakeMonotonicClock clock;
  EventLog events(/*capacity=*/16, &clock);
  events.Emit(EventSeverity::kInfo, "test", "endpoint.probe",
              {{"k", "v"}});
  ProgressTracker progress;

  ObsServer::Options options;
  options.registry = &registry;
  options.events = &events;
  options.progress = &progress;
  ObsServer server(options);
  ASSERT_TRUE(server.Start(0).ok());

  std::string index = Get(server.port(), "/");
  EXPECT_EQ(StatusOf(index), 200);
  EXPECT_NE(BodyOf(index).find("/metrics"), std::string::npos);

  std::string metrics = Get(server.port(), "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_DOUBLE_EQ(PromValue(BodyOf(metrics), "test_requests_seen"), 7);

  std::string progress_response = Get(server.port(), "/progress");
  EXPECT_EQ(StatusOf(progress_response), 200);
  auto progress_json = common::Json::Parse(BodyOf(progress_response));
  ASSERT_TRUE(progress_json.ok());
  EXPECT_EQ(progress_json->Find("schema")->string_value(),
            "xmodel.progress.v1");

  std::string tail = Get(server.port(), "/events?n=5");
  EXPECT_EQ(StatusOf(tail), 200);
  EXPECT_NE(tail.find("application/x-ndjson"), std::string::npos);
  EXPECT_NE(BodyOf(tail).find("endpoint.probe"), std::string::npos);

  // A non-numeric ?n= is a client error, not a crash.
  EXPECT_EQ(StatusOf(Get(server.port(), "/events?n=bogus")), 400);
  server.Stop();
}

TEST(ObsServerTest, HealthzFlipsUnderInjectedStallAndRecovers) {
  FakeMonotonicClock clock;
  EventLog events(/*capacity=*/16, &clock);
  Watchdog watchdog(/*stall_timeout_ms=*/1'000, &clock, &events);

  ObsServer::Options options;
  options.events = &events;
  options.watchdog = &watchdog;
  options.clock = &clock;
  ObsServer server(options);
  ASSERT_TRUE(server.Start(0).ok());

  std::string healthy = Get(server.port(), "/healthz");
  EXPECT_EQ(StatusOf(healthy), 200);
  auto healthy_json = common::Json::Parse(BodyOf(healthy));
  ASSERT_TRUE(healthy_json.ok());
  EXPECT_EQ(healthy_json->Find("schema")->string_value(),
            "xmodel.health.v1");
  EXPECT_EQ(healthy_json->Find("status")->string_value(), "ok");

  // No heartbeat for longer than the stall timeout: /healthz degrades.
  clock.AdvanceMs(2'000);
  std::string stalled = Get(server.port(), "/healthz");
  EXPECT_EQ(StatusOf(stalled), 503);
  auto stalled_json = common::Json::Parse(BodyOf(stalled));
  ASSERT_TRUE(stalled_json.ok());
  EXPECT_EQ(stalled_json->Find("status")->string_value(), "stalled");
  EXPECT_EQ(watchdog.stalls_observed(), 1u);

  // A heartbeat (progress resumed) restores the verdict.
  watchdog.Heartbeat();
  EXPECT_EQ(StatusOf(Get(server.port(), "/healthz")), 200);
  server.Stop();
}

TEST(ObsServerTest, QuitquitquitReleasesWaitForQuit) {
  ObsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.quit_requested());

  std::thread quitter([port = server.port()] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Get(port, "/quitquitquit");
  });
  const auto start = std::chrono::steady_clock::now();
  server.WaitForQuit(/*timeout_ms=*/10'000);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  quitter.join();
  EXPECT_TRUE(server.quit_requested());
  // Released by the request, far before the 10 s timeout.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5'000);
  server.Stop();
}

// The live-scrape acceptance test: scrape /metrics while a multi-worker
// check runs and assert the published checker counters advance
// monotonically mid-run. The checker flushes states.generated /
// levels.completed deltas at every level barrier, so a scraper watching a
// slow run sees strictly more than one distinct value.
TEST(ObsServerTest, LiveScrapeShowsAdvancingCheckerCounters) {
  ObsServer server;  // Global registry — where the checker publishes.
  ASSERT_TRUE(server.Start(0).ok());

  // Counters are process-global and cumulative; absent (-1) means no
  // checker has run yet in this process, i.e. a baseline of 0.
  const std::string before = BodyOf(Get(server.port(), "/metrics"));
  const double levels_before =
      std::max(0.0, PromValue(before, "checker_levels_completed"));
  const double generated_before =
      std::max(0.0, PromValue(before, "checker_states_generated"));

  SlowChainSpec spec(/*limit=*/120);  // ~121 levels at >= 3 ms each.
  tlax::CheckerOptions options;
  options.num_workers = 2;
  tlax::CheckResult result;
  std::thread checker([&spec, &options, &result] {
    result = tlax::ModelChecker(options).Check(spec);
  });

  std::vector<double> levels_seen;
  std::vector<double> generated_seen;
  for (int i = 0; i < 2'000; ++i) {
    std::string body = BodyOf(Get(server.port(), "/metrics"));
    double levels = PromValue(body, "checker_levels_completed");
    double generated = PromValue(body, "checker_states_generated");
    if (levels >= 0) levels_seen.push_back(levels);
    if (generated >= 0) generated_seen.push_back(generated);
    // Stop scraping once we have clearly seen the counters move.
    if (levels_seen.size() > 1 &&
        levels_seen.back() > levels_seen.front() &&
        levels_seen.back() >= levels_before + 20) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  checker.join();

  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.distinct_states, 121u);
  ASSERT_GE(levels_seen.size(), 2u);
  for (size_t i = 1; i < levels_seen.size(); ++i) {
    EXPECT_GE(levels_seen[i], levels_seen[i - 1]);  // Monotone mid-run.
  }
  EXPECT_GT(levels_seen.back(), levels_seen.front());
  for (size_t i = 1; i < generated_seen.size(); ++i) {
    EXPECT_GE(generated_seen[i], generated_seen[i - 1]);
  }
  EXPECT_GT(generated_seen.back(), generated_before);

  // After the run, the final scrape matches the CheckResult totals
  // relative to the pre-run baseline (live deltas + final remainder add
  // up exactly — publishing mid-run loses nothing).
  std::string final_body = BodyOf(Get(server.port(), "/metrics"));
  EXPECT_DOUBLE_EQ(PromValue(final_body, "checker_levels_completed"),
                   levels_before +
                       static_cast<double>(result.levels_completed));
  EXPECT_DOUBLE_EQ(
      PromValue(final_body, "checker_states_generated"),
      generated_before + static_cast<double>(result.generated_states));

  // The worker idle-time profile surfaced both in the result and the
  // scrape: per-worker gauges exist and the idle fraction is a sane
  // fraction.
  ASSERT_EQ(result.worker_busy_ms.size(), 2u);
  EXPECT_GT(result.worker_busy_ms[0] + result.worker_busy_ms[1], 0);
  EXPECT_GE(result.barrier_idle_fraction, 0);
  EXPECT_LE(result.barrier_idle_fraction, 1);
  EXPECT_GE(PromValue(final_body, "checker_worker0_busy_ms"), 0);
  EXPECT_GE(PromValue(final_body, "checker_worker1_busy_ms"), 0);
  EXPECT_GE(PromValue(final_body, "checker_barrier_idle_fraction"), 0);
  EXPECT_LE(PromValue(final_body, "checker_barrier_idle_fraction"), 1);

  // obs.http.* accounting saw this conversation.
  EXPECT_GT(PromValue(final_body, "obs_http_requests"), 0);
  EXPECT_GT(PromValue(final_body, "obs_http_bytes"), 0);
  server.Stop();
}

}  // namespace
}  // namespace xmodel::obs
