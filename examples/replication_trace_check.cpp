// Model-based trace checking, end to end (the paper's Figure 1 pipeline):
//
//   replica set under test  ->  per-node JSON log files
//   -> merge by timestamp   ->  Figure-3 state-sequence reconstruction
//   -> generated Trace module (Figure 4)  ->  trace check vs RaftMongo
//
// The demo runs twice: once against a conforming implementation (the
// trace passes) and once with the real initial-sync quorum bug enabled
// (the trace violates the spec partway through, as in §4.2.2).

#include <algorithm>
#include <cstdio>

#include "repl/scenarios.h"
#include "specs/raft_mongo_spec.h"
#include "trace/mbtc_pipeline.h"
#include "trace/trace_logger.h"

using namespace xmodel;  // NOLINT — example binaries only.

namespace {

void RunPipeline(const repl::Scenario& scenario, const char* label) {
  std::printf("== %s ==\n", label);

  // 1. Run the system with tracing enabled; every node writes JSON events
  //    to its own log file, timestamped by the Figure-2 clock-tick wait.
  repl::ReplicaSet rs(scenario.config);
  trace::TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  common::Status run = scenario.run(rs);
  std::printf("scenario '%s': %s, %llu trace events\n",
              scenario.name.c_str(), run.ok() ? "ran" : "failed",
              static_cast<unsigned long long>(logger.events_logged()));

  // A peek at the raw log lines.
  auto files = logger.LogFiles(rs.num_nodes());
  for (const auto& file : files) {
    if (!file.empty()) {
      std::printf("sample log line: %s\n", file.front().c_str());
      break;
    }
  }

  // 2-4. Merge, post-process, emit the Trace module, check.
  specs::RaftMongoConfig spec_config;
  spec_config.num_nodes = scenario.config.num_nodes;
  spec_config.max_term = 1'000'000;
  spec_config.max_oplog_len = 1'000'000;
  specs::RaftMongoSpec spec(spec_config);

  trace::MbtcPipelineOptions options;
  options.checker.allow_stuttering = true;
  trace::MbtcPipeline pipeline(&spec, options);
  trace::MbtcReport report = pipeline.Run(files);

  // A peek at the generated Trace module (the paper's Figure 4 artifact).
  std::printf("Trace module preview:\n");
  size_t shown = 0, pos = 0;
  while (shown < 8 && pos < report.trace_module.size()) {
    size_t end = report.trace_module.find('\n', pos);
    std::printf("    %s\n",
                report.trace_module.substr(pos, end - pos).c_str());
    pos = end + 1;
    ++shown;
  }
  std::printf("    ... (%zu states total)\n", report.num_states);

  if (report.passed()) {
    std::printf("MBTC verdict: PASS — the trace is a behavior of %s\n\n",
                spec.name().c_str());
  } else {
    std::printf("MBTC verdict: VIOLATION at step %zu of %llu — %s\n\n",
                report.check.failed_step,
                static_cast<unsigned long long>(report.num_events),
                report.check.status.message().c_str());
  }
}

}  // namespace

int main() {
  auto scenarios = repl::BaseScenarios();

  auto conforming = std::find_if(
      scenarios.begin(), scenarios.end(),
      [](const repl::Scenario& s) { return s.name == "failover_basic"; });
  RunPipeline(*conforming, "conforming implementation");

  auto buggy = std::find_if(scenarios.begin(), scenarios.end(),
                            [](const repl::Scenario& s) {
                              return s.name == "initial_sync_quorum_bug";
                            });
  RunPipeline(*buggy, "implementation with the initial-sync quorum bug");

  std::printf("The violation above is the paper's §4.2.2 discovery: an "
              "initial-syncing member\nwas counted toward the write "
              "majority although its data is not durable.\n");
  return 0;
}
