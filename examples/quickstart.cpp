// Quickstart: the tlax model checker in five minutes.
//
// Defines a tiny specification inline (the Die Hard water-jug puzzle),
// model-checks it, prints the counterexample trace TLC-style, and then
// trace-checks an observed behavior against a second spec — the two core
// verbs of this library.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "specs/toy_specs.h"
#include "tlax/checker.h"
#include "tlax/trace_check.h"

using namespace xmodel;  // NOLINT — example binaries only.

int main() {
  // 1. Model checking: explore every reachable state, report the shortest
  //    path to an invariant violation.
  specs::DieHardSpec diehard;
  tlax::CheckResult result = tlax::ModelChecker().Check(diehard);

  std::printf("Die Hard: explored %llu distinct states (%llu generated)\n",
              static_cast<unsigned long long>(result.distinct_states),
              static_cast<unsigned long long>(result.generated_states));
  if (result.violation.has_value()) {
    std::printf("invariant %s is violated — i.e. the puzzle has a "
                "solution:\n\n",
                result.violation->kind.c_str());
    int step = 0;
    for (const tlax::TraceStep& s : result.violation->trace) {
      std::printf("  %d. %-12s small = %lld, big = %lld\n", ++step,
                  s.action.c_str(),
                  static_cast<long long>(s.state.var(0).int_value()),
                  static_cast<long long>(s.state.var(1).int_value()));
    }
  }

  // 2. Trace checking: is an observed state sequence a behavior of the
  //    spec? (This is the MBTC primitive — see
  //    examples/replication_trace_check.cpp for the full pipeline.)
  specs::CounterSpec counter(/*limit=*/5);
  auto full = [](int64_t x, int64_t y) {
    tlax::TraceState t;
    t.vars = {tlax::Value::Int(x), tlax::Value::Int(y)};
    return t;
  };

  std::vector<tlax::TraceState> good = {full(0, 0), full(1, 0), full(1, 1)};
  std::vector<tlax::TraceState> bad = {full(0, 0), full(2, 0)};

  tlax::TraceChecker checker;
  std::printf("\nlegal trace:   %s\n",
              checker.Check(counter, good).ok() ? "accepted" : "rejected");
  tlax::TraceCheckResult rejected = checker.Check(counter, bad);
  std::printf("illegal trace: %s (no action explains step %zu)\n",
              rejected.ok() ? "accepted" : "rejected",
              rejected.failed_step);
  return 0;
}
