// An autonomous replica set on virtual time: randomized election timeouts,
// periodic heartbeats and replication polls, minority-leader stepdown —
// the shape of the randomized integration suites the paper instruments
// (§2.3). The demo injects a partition and a crash, lets the cluster heal
// itself, and finally trace-checks the whole run against the spec.

#include <cstdio>

#include "repl/scheduler.h"
#include "repl/timed_driver.h"
#include "specs/raft_mongo_spec.h"
#include "trace/mbtc_pipeline.h"
#include "trace/trace_logger.h"

using namespace xmodel;  // NOLINT — example binaries only.

int main() {
  repl::ReplicaSetConfig config;
  config.num_nodes = 5;
  repl::ReplicaSet rs(config);
  trace::TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);

  repl::Scheduler scheduler(&rs.clock());
  common::Rng rng(2026);
  repl::TimedDriver driver(&rs, &scheduler, &rng);
  driver.Start();

  auto status = [&](const char* what) {
    int leader = rs.NewestLeader();
    std::printf("t=%6lld ms  %-28s leader=%d term=%lld commit=%s\n",
                static_cast<long long>(rs.clock().NowMs() - 1'000'000), what,
                leader, leader >= 0 ? (long long)rs.node(leader).term() : -1,
                leader >= 0
                    ? rs.node(leader).commit_point().ToString().c_str()
                    : "-");
  };

  scheduler.RunFor(500);
  status("cold start -> first election");
  for (int i = 0; i < 5; ++i) driver.ClientWrite("w").ok();
  scheduler.RunFor(300);
  status("5 writes committed");

  int old_leader = rs.NewestLeader();
  rs.CrashNode(old_leader, /*unclean=*/false);
  scheduler.RunFor(800);
  status("leader crashed -> failover");

  rs.network().Partition({{rs.NewestLeader(), (rs.NewestLeader() + 1) % 5}});
  scheduler.RunFor(1200);
  status("leader stranded -> stepdown+new");

  rs.network().Heal();
  rs.RestartNode(old_leader);
  for (int i = 0; i < 3; ++i) driver.ClientWrite("w2").ok();
  scheduler.RunFor(1500);
  status("healed, converged");

  std::printf("\nelections started: %lld, forced stepdowns: %lld, trace "
              "events: %llu\n",
              static_cast<long long>(driver.elections_started()),
              static_cast<long long>(driver.stepdowns_forced()),
              static_cast<unsigned long long>(logger.events_logged()));
  std::printf("committed writes durable: %s\n",
              rs.CommittedWritesDurable() ? "yes" : "NO");

  specs::RaftMongoConfig spec_config;
  spec_config.num_nodes = rs.num_nodes();
  spec_config.max_term = 1'000'000;
  spec_config.max_oplog_len = 1'000'000;
  specs::RaftMongoSpec spec(spec_config);
  trace::MbtcPipelineOptions options;
  options.checker.allow_stuttering = true;
  trace::MbtcPipeline pipeline(&spec, options);
  auto report = pipeline.Run(logger.LogFiles(rs.num_nodes()));
  if (report.passed()) {
    std::printf("MBTC: the whole run is a behavior of %s (%llu events)\n",
                spec.name().c_str(),
                static_cast<unsigned long long>(report.num_events));
  } else {
    std::printf("MBTC: VIOLATION at step %zu of %llu\n",
                report.check.failed_step,
                static_cast<unsigned long long>(report.num_events));
  }
  return report.passed() ? 0 : 1;
}
