// Offline-first sync with operational transformation: three clients edit
// the same array while disconnected, then merge with the server; all peers
// converge (§2.2's full-duplex protocol, in miniature).
//
// Also demonstrates the full document model (tables/objects/lists) and
// the swap/move bug the model checker found (§5.1.3).

#include <cstdio>

#include "ot/operation.h"
#include "ot/sync.h"
#include "ot/table_ops.h"

using namespace xmodel;  // NOLINT — example binaries only.
using ot::Operation;

int main() {
  // -- Array sync ------------------------------------------------------
  std::printf("initial array on every peer: {10, 20, 30}\n\n");
  ot::SyncSystem sync({10, 20, 30}, 3);

  // Three clients edit offline, unaware of each other.
  sync.ClientApply(0, Operation::Set(2, 99).At(1, 1)).ok();
  sync.ClientApply(1, Operation::Erase(1).At(1, 2)).ok();
  sync.ClientApply(2, Operation::Insert(0, 5).At(1, 3)).ok();

  for (int c = 0; c < 3; ++c) {
    std::printf("client %d edited offline -> %s\n", c,
                ot::ToString(sync.client_state(c)).c_str());
  }

  // Everyone reconnects; the merge windows are rebased via OT.
  common::Status status = sync.SyncAll();
  std::printf("\nafter sync: server = %s, all consistent: %s\n",
              ot::ToString(sync.server_state()).c_str(),
              sync.AllConsistent() ? "yes" : "NO");
  for (int c = 0; c < 3; ++c) {
    std::printf("client %d applied transformed ops: %s\n", c,
                ot::ToString(sync.applied_ops(c)).c_str());
  }
  (void)status;

  // -- The full 19-operation document model ----------------------------
  std::printf("\ndocument-store merge (the 13 structural operations merge "
              "trivially):\n");
  ot::Db left, right;
  for (ot::Db* db : {&left, &right}) {
    ot::DbOperation::CreateTable("tasks").Apply(db).ok();
    ot::DbOperation::CreateObject("tasks", 1).Apply(db).ok();
    ot::DbOperation::CreateList("tasks", 1, "tags").Apply(db).ok();
  }
  ot::DbOperation a =
      ot::DbOperation::SetField("tasks", 1, "title", 42).At(1, 1);
  ot::DbOperation b =
      ot::DbOperation::ArrayOp("tasks", 1, "tags", Operation::Insert(0, 7))
          .At(1, 2);
  ot::DbMergeEngine db_engine;
  auto merged = db_engine.Merge(a, b);
  a.Apply(&left).ok();
  for (const auto& op : merged->right) op.Apply(&left).ok();
  b.Apply(&right).ok();
  for (const auto& op : merged->left) op.Apply(&right).ok();
  std::printf("  %s  +  %s  -> stores %s\n", a.ToString().c_str(),
              b.ToString().c_str(), left == right ? "CONVERGE" : "DIVERGE");

  // -- The bug the model checker found ---------------------------------
  std::printf("\nthe §5.1.3 swap/move bug, reproduced on demand:\n");
  ot::MergeConfig buggy;
  buggy.enable_swap_move_bug = true;
  ot::SyncSystem doomed({1, 2, 3}, 2, buggy);
  doomed.ClientApply(0, Operation::Move(0, 2).At(1, 1)).ok();
  doomed.ClientApply(1, Operation::Swap(0, 2).At(1, 2)).ok();
  doomed.SyncClient(0).ok();
  common::Status crash = doomed.SyncClient(1);
  std::printf("  merging Move(0->2) with Swap(0,2): %s\n",
              crash.ok() ? "ok (unexpected)" : crash.ToString().c_str());
  std::printf("  (the Golang re-implementation simply refuses ArraySwap — "
              "it was deprecated)\n");
  return 0;
}
