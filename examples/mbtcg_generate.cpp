// Model-based test-case generation, end to end (§5.2): explore the
// array_ot specification, dump the state graph as DOT, parse it back,
// extract one test case per fully-merged leaf, write a compilable gtest
// file to disk, and run every case in-process against both the C++ and
// the "Golang" merge-rule implementations.
//
// Usage: mbtcg_generate [output_directory]   (default: current directory)

#include <cstdio>
#include <fstream>
#include <string>

#include "mbtcg/generator.h"
#include "ot/coverage.h"
#include "otgo/go_merge.h"

using namespace xmodel;  // NOLINT — example binaries only.

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  specs::ArrayOtConfig config;  // 3 clients, 1 op each, {1,2,3}.
  std::vector<mbtcg::TestCase> cases;
  mbtcg::GenerationReport report = mbtcg::GenerateTestCases(config, &cases);
  if (!report.status.ok()) {
    std::printf("generation failed: %s\n", report.status.ToString().c_str());
    return 1;
  }
  std::printf("explored %llu spec states; %zu test cases extracted from "
              "the %0.1f MB DOT dump\n",
              static_cast<unsigned long long>(report.spec_states),
              cases.size(), static_cast<double>(report.dot_bytes) / 1e6);

  // Write the generated gtest source (all 4,913 tests).
  std::string path = out_dir + "/generated_transform_test.cc";
  std::ofstream file(path);
  file << mbtcg::GenerateCppTestFile(cases);
  file.close();
  std::printf("wrote %s\n", path.c_str());

  // Run everything in-process, against both implementations, with branch
  // coverage accounting.
  auto& coverage = ot::CoverageRegistry::Instance();
  coverage.Reset();
  mbtcg::RunReport cpp_run = mbtcg::RunTestCases(cases);
  std::printf("C++ rules:  %zu/%zu cases pass\n", cpp_run.passed,
              cpp_run.total);

  otgo::GoMergeEngine go;
  mbtcg::RunReport go_run = mbtcg::RunTestCases(cases, &go);
  std::printf("Go rules:   %zu/%zu cases pass\n", go_run.passed,
              go_run.total);

  std::printf("merge-rule branch coverage from this suite: %zu / %zu\n",
              coverage.covered_branches(), coverage.total_branches());
  std::printf("\n(the swap-enabled and descending-merge configurations — "
              "see bench_coverage —\n bring coverage to 100%%)\n");
  return (cpp_run.all_passed() && go_run.all_passed()) ? 0 : 1;
}
