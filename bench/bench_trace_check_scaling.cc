// Experiment E4 (§4.2.4): trace-checking cost versus trace length.
// "Pressler's method worked well to check traces of hundreds of events,
// but for thousands of events it was impractically slow" — each checking
// step re-evaluates the in-module trace tuple, so cost grows
// quadratically. The TLC extension the paper says Kuppe was building
// bypasses the parser: our kNative mode.
//
// This bench builds legal traces of growing length from fuzzer runs and
// times both modes on the same inputs.

#include <cstdio>

#include "bench_util.h"
#include "repl/rollback_fuzzer.h"
#include "specs/raft_mongo_spec.h"
#include "tlax/tla_text.h"
#include "tlax/trace_check.h"
#include "trace/event_processor.h"
#include "trace/mbtc_pipeline.h"
#include "trace/trace_logger.h"

using namespace xmodel;  // NOLINT — bench binaries only.

int main(int argc, char** argv) {
  bench::Harness bench("trace_check_scaling", argc, argv);
  std::printf("E4: Pressler re-parse checking vs native trace checking\n\n");

  // One long, fully legal trace from the mitigated fuzzer.
  repl::RollbackFuzzerOptions options;
  options.seed = 4;
  options.num_steps = bench.quick() ? 2000 : 12000;
  options.sync_all_before_writes = true;
  options.avoid_unclean_restarts = true;
  options.avoid_two_leaders = true;
  repl::ReplicaSet rs(options.config);
  trace::TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  repl::RollbackFuzzer(options).Run(&rs);

  auto merged = trace::MergeLogs(logger.LogFiles(rs.num_nodes()));
  if (!merged.ok()) {
    return bench.Fail(merged.status().ToString());
  }
  trace::EventProcessorOptions processor_options;
  processor_options.num_nodes = options.config.num_nodes;
  trace::ProcessedTrace processed =
      trace::EventProcessor(processor_options).Process(*merged);
  if (!processed.ok()) {
    return bench.Fail(processed.status.ToString());
  }
  std::vector<tlax::TraceState> full_trace =
      trace::MbtcPipeline::ToTraceStates(processed.states);
  std::printf("source trace: %zu states\n\n", full_trace.size());

  specs::RaftMongoConfig spec_config;
  spec_config.num_nodes = options.config.num_nodes;
  spec_config.max_term = 1'000'000;
  spec_config.max_oplog_len = 1'000'000;
  specs::RaftMongoSpec spec(spec_config);

  std::printf("%8s %14s %16s %10s\n", "events", "native (s)",
              "pressler (s)", "ratio");
  double last_ratio = 0;
  const size_t max_length = bench.quick() ? 250u : 2000u;
  for (size_t length : {10u, 50u, 100u, 250u, 500u, 1000u, 2000u}) {
    if (length > full_trace.size() || length > max_length) break;
    std::vector<tlax::TraceState> prefix(full_trace.begin(),
                                         full_trace.begin() + length);

    tlax::TraceCheckOptions native_options;
    native_options.allow_stuttering = true;
    tlax::TraceCheckResult native =
        tlax::TraceChecker(native_options).Check(spec, prefix);

    if (!native.ok()) {
      std::printf("%8zu  UNEXPECTED VIOLATION at step %zu\n", length,
                  native.failed_step);
      continue;
    }
    if (length > 1000) {
      // The paper's point exactly: at thousands of events the re-parse
      // method is impractically slow; we stop timing it here.
      std::printf("%8zu %14.4f %16s\n", length, native.seconds,
                  "(impractical)");
      continue;
    }
    tlax::TraceCheckOptions pressler_options;
    pressler_options.allow_stuttering = true;
    pressler_options.mode = tlax::TraceCheckMode::kPresslerReparse;
    tlax::TraceCheckResult pressler =
        tlax::TraceChecker(pressler_options).Check(spec, prefix);
    if (!pressler.ok()) {
      std::printf("%8zu  UNEXPECTED PRESSLER VIOLATION at step %zu\n",
                  length, pressler.failed_step);
      continue;
    }
    last_ratio = pressler.seconds / std::max(native.seconds, 1e-9);
    std::printf("%8zu %14.4f %16.4f %9.1fx\n", length, native.seconds,
                pressler.seconds, last_ratio);
  }

  std::printf("\npaper reference: hundreds of events practical, thousands "
              "\"impractically slow\";\n");
  std::printf("native checking (the TLC issue-413 extension) removes the "
              "per-step re-parse.\n");
  bench.AddResult("source_trace_states",
                  static_cast<double>(full_trace.size()));
  bench.AddResult("pressler_vs_native_ratio_at_longest", last_ratio);
  return bench.Finish(0);
}
