// Experiment E3 (§4.2.2): what trace-checking catches. The paper applied
// MBTC to 5 handwritten tests and one randomized test: one handwritten
// test passed; four violated the specification via two implementation
// discrepancies (initial sync and term gossip); the rollback_fuzzer trace
// reproduced the initial-sync quorum bug 4 steps from the trace's start.
//
// This bench trace-checks the scenario library against the Detailed
// RaftMongo spec and reports which scenarios pass, which violate and why,
// and the effect of the paper's mitigations (solutions 2/3/4). It also
// runs the partial-state-logging ablation (§4.2.1/§6): log only changed
// variables and let the post-processor fill the rest in.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "repl/rollback_fuzzer.h"
#include "tlax/spec_coverage.h"
#include "repl/scenarios.h"
#include "specs/raft_mongo_spec.h"
#include "trace/mbtc_pipeline.h"
#include "trace/trace_logger.h"

using namespace xmodel;  // NOLINT — bench binaries only.

namespace {

specs::RaftMongoSpec MakeSpec(int num_nodes) {
  specs::RaftMongoConfig config;
  config.variant = specs::RaftMongoVariant::kDetailed;
  config.num_nodes = num_nodes;
  config.max_term = 1'000'000;  // Traces are checked unbounded.
  config.max_oplog_len = 1'000'000;
  return specs::RaftMongoSpec(config);
}

trace::MbtcReport CheckScenario(const repl::Scenario& scenario,
                                bool partial_logging) {
  repl::ReplicaSet rs(scenario.config);
  trace::TraceLoggerOptions logger_options;
  logger_options.partial_state_logging = partial_logging;
  trace::TraceLogger logger(&rs.clock(), logger_options);
  rs.AttachTraceSink(&logger);
  scenario.run(rs).ok();
  specs::RaftMongoSpec spec = MakeSpec(scenario.config.num_nodes);
  trace::MbtcPipelineOptions options;
  options.checker.allow_stuttering = true;
  trace::MbtcPipeline pipeline(&spec, options);
  return pipeline.Run(logger.LogFiles(rs.num_nodes()));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness bench("trace_check", argc, argv);
  std::printf("E3: trace-checking the implementation against RaftMongo\n\n");

  for (bool partial : {false, true}) {
    int pass = 0, fail = 0, skipped_arbiters = 0;
    int expected_violations = 0;
    for (const repl::Scenario& scenario : repl::BaseScenarios()) {
      if (scenario.uses_arbiters) {
        ++skipped_arbiters;  // Solution 2: avoid tests that crash tracing.
        continue;
      }
      trace::MbtcReport report = CheckScenario(scenario, partial);
      bool expected_to_fail = scenario.exhibits_two_leaders ||
                              scenario.name == "initial_sync_quorum_bug";
      if (report.passed()) {
        ++pass;
      } else {
        ++fail;
        if (expected_to_fail) ++expected_violations;
      }
      if (!partial) {
        std::printf("  %-28s %s", scenario.name.c_str(),
                    report.passed() ? "PASS" : "VIOLATION");
        if (!report.passed()) {
          std::printf(" at step %zu of %llu%s",
                      report.check.failed_step,
                      static_cast<unsigned long long>(report.num_events),
                      expected_to_fail ? "  (known discrepancy)" : "");
        }
        std::printf("\n");
      }
    }
    std::printf("\n[%s logging] pass=%d violations=%d (all %d expected) "
                "arbiter-skipped=%d\n\n",
                partial ? "partial-state" : "full-state", pass, fail,
                expected_violations, skipped_arbiters);
  }

  std::printf("paper reference: of 5 handwritten tests checked, 1 passed "
              "and 4 violated the spec\n");
  std::printf("                 (initial-sync and term discrepancies); "
              "arbiters were skipped outright.\n\n");

  // The quorum-bug violation in detail: how early does the checker catch
  // it, and do the paper's mitigations restore a checkable trace?
  auto scenarios = repl::BaseScenarios();
  auto bug = std::find_if(scenarios.begin(), scenarios.end(),
                          [](const repl::Scenario& s) {
                            return s.name == "initial_sync_quorum_bug";
                          });
  if (bug == scenarios.end()) {
    return bench.Fail("initial_sync_quorum_bug scenario missing");
  }
  trace::MbtcReport buggy = CheckScenario(*bug, false);
  std::printf("initial-sync quorum bug: violation at step %zu of %llu "
              "(paper: step 4 of 2,683 — \"left the remaining steps "
              "unchecked\")\n",
              buggy.check.failed_step,
              static_cast<unsigned long long>(buggy.num_events));

  // Solution 2 (avoidance): the fuzzer with all members synced before
  // writes and no mid-run initial syncs produces a fully checkable trace.
  repl::RollbackFuzzerOptions options;
  options.seed = 11;
  options.num_steps = bench.quick() ? 800 : 4000;
  options.sync_all_before_writes = true;
  options.avoid_unclean_restarts = true;
  options.avoid_two_leaders = true;
  repl::ReplicaSet rs(options.config);
  trace::TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  repl::RollbackFuzzer(options).Run(&rs);
  specs::RaftMongoSpec spec = MakeSpec(options.config.num_nodes);
  trace::MbtcPipelineOptions popts;
  popts.checker.allow_stuttering = true;
  trace::MbtcPipeline pipeline(&spec, popts);
  trace::MbtcReport avoided = pipeline.Run(logger.LogFiles(rs.num_nodes()));
  std::printf("solution 2 (modified rollback_fuzzer): %llu events, %s\n",
              static_cast<unsigned long long>(avoided.num_events),
              avoided.passed() ? "trace PASSES in full" : "still violates");

  // The metric the paper wanted but never built (§4.2.4): total spec-space
  // coverage accumulated across every checked trace, as a CI deployment
  // would compute it.
  specs::RaftMongoConfig bounded_config;
  bounded_config.num_nodes = 3;
  bounded_config.max_term = 2;
  bounded_config.max_oplog_len = 2;
  specs::RaftMongoSpec bounded(bounded_config);
  tlax::SpecCoverage coverage;
  if (coverage.Initialize(bounded).ok()) {
    for (const repl::Scenario& scenario : repl::BaseScenarios()) {
      if (scenario.uses_arbiters || scenario.exhibits_two_leaders) continue;
      if (scenario.name == "initial_sync_quorum_bug") continue;
      if (scenario.config.num_nodes != 3) continue;
      repl::ReplicaSet srs(scenario.config);
      trace::TraceLogger slog(&srs.clock());
      srs.AttachTraceSink(&slog);
      scenario.run(srs).ok();
      auto merged = trace::MergeLogs(slog.LogFiles(srs.num_nodes()));
      if (!merged.ok()) continue;
      trace::EventProcessorOptions po;
      po.num_nodes = 3;
      trace::ProcessedTrace processed =
          trace::EventProcessor(po).Process(*merged);
      if (!processed.ok()) continue;
      coverage.AddTrace(bounded,
                        trace::MbtcPipeline::ToTraceStates(processed.states))
          .ok();
    }
    std::printf("\naccumulated state-space coverage over all checked "
                "traces (terms<=2, oplog<=2):\n");
    std::printf("  %llu of %llu reachable spec states (%.2f%%) across %llu "
                "traces\n",
                static_cast<unsigned long long>(coverage.covered_states()),
                static_cast<unsigned long long>(coverage.reachable_states()),
                100.0 * coverage.Fraction(),
                static_cast<unsigned long long>(coverage.traces()));
    std::printf("  (the paper: \"measure accumulated state space coverage "
                "over all tests\" — never\n   built; handwritten tests "
                "exercise a sliver of the space, motivating fuzzing)\n");
    bench.AddResult("coverage_fraction", coverage.Fraction());
  }
  bench.AddResult("quorum_bug_failed_step",
                  static_cast<double>(buggy.check.failed_step));
  bench.AddResult("mitigated_fuzzer_events",
                  static_cast<double>(avoided.num_events));
  bench.AddResult("mitigated_fuzzer_passes",
                  std::string(avoided.passed() ? "yes" : "no"));
  return bench.Finish(avoided.passed() ? 0 : 1);
}
