// Shared harness for the experiment benches: uniform flag parsing
// (--quick, --metrics-out=FILE, --serve=PORT, --events-out=FILE,
// --explore=level|relaxed), a run timer, and a BENCH_<name>.json report
// carrying the full
// metrics-registry snapshot plus per-bench result values — the artifact
// shape CI uploads and tools/validate_metrics.py checks.
//
// --serve=PORT stands up the live observability plane (obs::ObsServer on
// 127.0.0.1; /metrics, /healthz, /progress, /events) for the duration of
// the bench; the bench's checker runs heartbeat the harness watchdog
// (reachable via watchdog()) so /healthz reflects stalls.
// --serve-linger-ms=N keeps the server up after Finish until the timeout
// or GET /quitquitquit. --events-out=FILE attaches a JSONL event sink.
//
// Usage:
//   int main(int argc, char** argv) {
//     xmodel::bench::Harness bench("state_space", argc, argv);
//     if (!setup.ok()) return bench.Fail(setup.ToString());
//     ...
//     bench.AddResult("states", static_cast<double>(n));
//     return bench.Finish(exit_code);
//   }

#ifndef XMODEL_BENCH_BENCH_UTIL_H_
#define XMODEL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/status.h"
#include "common/strings.h"
#include "obs/eventlog.h"
#include "obs/export.h"
#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/watchdog.h"

namespace xmodel::bench {

class Harness {
 public:
  /// Parses the harness flags out of argv (leaving unknown flags for the
  /// bench) and starts the run timer. `--quick` (or the XMODEL_QUICK
  /// environment variable) selects the CI smoke configuration;
  /// `--metrics-out=FILE` overrides the default BENCH_<name>.json path.
  Harness(const char* name, int argc, char** argv)
      : name_(name), out_path_(common::StrCat("BENCH_", name, ".json")) {
    int serve_port = -1;
    std::string events_out;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        quick_ = true;
      } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
        out_path_ = argv[i] + 14;
      } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
        serve_port = std::atoi(argv[i] + 8);
      } else if (std::strncmp(argv[i], "--serve-linger-ms=", 18) == 0) {
        serve_linger_ms_ = std::atoll(argv[i] + 18);
      } else if (std::strncmp(argv[i], "--events-out=", 13) == 0) {
        events_out = argv[i] + 13;
      } else if (std::strncmp(argv[i], "--explore=", 10) == 0) {
        explore_ = argv[i] + 10;
        if (explore_ != "level" && explore_ != "relaxed") {
          std::fprintf(stderr,
                       "BENCH %s: --explore must be 'level' or 'relaxed'; "
                       "using 'level'\n",
                       name_.c_str());
          explore_ = "level";
        }
      }
    }
    if (std::getenv("XMODEL_QUICK") != nullptr) quick_ = true;
    if (!events_out.empty()) {
      common::Status status =
          obs::EventLog::Global().OpenJsonlSink(events_out);
      if (!status.ok()) {
        std::fprintf(stderr, "BENCH %s: events-out: %s\n", name_.c_str(),
                     status.ToString().c_str());
      }
    }
    if (serve_port >= 0) {
      obs::ObsServer::Options serve_options;
      serve_options.watchdog = &watchdog_;
      serve_options.progress = &progress_;
      server_ = std::make_unique<obs::ObsServer>(serve_options);
      common::Status status = server_->Start(serve_port);
      if (!status.ok()) {
        std::fprintf(stderr, "BENCH %s: serve: %s\n", name_.c_str(),
                     status.ToString().c_str());
        server_.reset();
      } else {
        std::fprintf(stderr,
                     "BENCH %s: serving observability on "
                     "http://127.0.0.1:%d/\n",
                     name_.c_str(), server_->port());
      }
    }
    start_ns_ = common::MonotonicClock::Real()->NowNanos();
  }

  ~Harness() {
    if (server_ != nullptr) {
      if (serve_linger_ms_ > 0) server_->WaitForQuit(serve_linger_ms_);
      server_->Stop();
    }
    obs::EventLog::Global().CloseJsonlSink();
  }

  bool quick() const { return quick_; }
  const std::string& out_path() const { return out_path_; }
  /// Exploration policy name from --explore: "level" (default) or
  /// "relaxed". Kept as a string so benches that never touch the model
  /// checker need not link tlax; checker benches parse it with
  /// tlax::ParseExplorationPolicy.
  const std::string& explore() const { return explore_; }
  /// Wire these into CheckerOptions (watchdog/progress_reporter) so the
  /// live endpoints track the bench's checker runs.
  obs::Watchdog* watchdog() { return &watchdog_; }
  obs::ProgressTracker* progress() { return &progress_; }

  /// Records one headline number (or string) for the report's "results"
  /// object.
  void AddResult(const std::string& key, double value) {
    results_.emplace_back(key, common::Json::Double(value));
  }
  void AddResult(const std::string& key, const std::string& value) {
    results_.emplace_back(key, common::Json::Str(value));
  }

  /// Setup failed: report it, still write the JSON (with the error
  /// recorded) so CI artifacts show what went wrong, and return a nonzero
  /// exit code for main.
  int Fail(const std::string& message) {
    std::fprintf(stderr, "BENCH %s setup failed: %s\n", name_.c_str(),
                 message.c_str());
    error_ = message;
    WriteReport(/*exit_code=*/2);
    return 2;
  }

  /// Normal completion: writes BENCH_<name>.json and passes `exit_code`
  /// through (or 2 if the report itself cannot be written).
  int Finish(int exit_code) {
    if (!WriteReport(exit_code) && exit_code == 0) exit_code = 2;
    return exit_code;
  }

 private:
  bool WriteReport(int exit_code) {
    const double seconds =
        static_cast<double>(common::MonotonicClock::Real()->NowNanos() -
                            start_ns_) *
        1e-9;
    obs::MetricsRegistry::Global()
        .GetGauge(common::StrCat("bench.", name_, ".run.seconds"))
        .Set(seconds);

    common::Json doc = obs::ToJson(obs::MetricsRegistry::Global().Snapshot());
    doc.Set("bench", common::Json::Str(name_));
    doc.Set("quick", common::Json::Bool(quick_));
    doc.Set("exit_code", common::Json::Int(exit_code));
    doc.Set("wall_seconds", common::Json::Double(seconds));
    if (!error_.empty()) doc.Set("error", common::Json::Str(error_));
    common::Json results = common::Json::MakeObject();
    for (auto& [key, value] : results_) results.Set(key, std::move(value));
    doc.Set("results", std::move(results));

    common::Status status = obs::WriteJsonFile(doc, out_path_);
    if (!status.ok()) {
      std::fprintf(stderr, "BENCH %s: cannot write %s: %s\n", name_.c_str(),
                   out_path_.c_str(), status.ToString().c_str());
      return false;
    }
    std::fprintf(stderr, "BENCH %s: report written to %s\n", name_.c_str(),
                 out_path_.c_str());
    return true;
  }

  std::string name_;
  std::string out_path_;
  std::string explore_ = "level";
  bool quick_ = false;
  int64_t start_ns_ = 0;
  int64_t serve_linger_ms_ = 0;
  std::string error_;
  std::vector<std::pair<std::string, common::Json>> results_;
  obs::Watchdog watchdog_;
  obs::ProgressTracker progress_;
  std::unique_ptr<obs::ObsServer> server_;
};

}  // namespace xmodel::bench

#endif  // XMODEL_BENCH_BENCH_UTIL_H_
