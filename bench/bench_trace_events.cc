// Experiment E2 (§4.1): trace collection at test-suite scale. The paper
// enabled tracing for 423 handwritten JavaScript tests; 120 failed due to
// incompatibilities with tracing (arbiters crash when traced), and the
// remainder produced 42,262 trace events. A representative run of
// rollback_fuzzer produced 2,683 events.
//
// This bench runs our scenario library and rollback fuzzer with tracing
// enabled and reports the same table.

#include <cstdio>

#include "bench_util.h"
#include "repl/rollback_fuzzer.h"
#include "repl/scenarios.h"
#include "trace/trace_logger.h"

using namespace xmodel;  // NOLINT — bench binaries only.

int main(int argc, char** argv) {
  bench::Harness bench("trace_events", argc, argv);
  std::printf("E2: trace-event volume across the test suite\n\n");

  int total = 0, passed = 0, incompatible = 0, failed = 0;
  uint64_t events = 0;
  for (const repl::Scenario& scenario : repl::AllScenarios()) {
    ++total;
    repl::ReplicaSet rs(scenario.config);
    trace::TraceLogger logger(&rs.clock());
    rs.AttachTraceSink(&logger);
    repl::ScenarioOutcome outcome;
    outcome.name = scenario.name;
    outcome.status = scenario.run(rs);
    bool arbiter_crash = false;
    for (int n = 0; n < rs.num_nodes(); ++n) {
      if (rs.node(n).crashed_by_tracing()) arbiter_crash = true;
    }
    if (arbiter_crash) {
      ++incompatible;
    } else if (outcome.status.ok()) {
      ++passed;
      events += logger.events_logged();
    } else {
      ++failed;
    }
  }

  std::printf("handwritten scenarios:        %6d   (paper: 423)\n", total);
  std::printf("incompatible with tracing:    %6d   (paper: 120 — arbiters "
              "crash when traced)\n",
              incompatible);
  std::printf("unexpected failures:          %6d   (paper: 0)\n", failed);
  std::printf("passed with tracing:          %6d\n", passed);
  std::printf("trace events collected:       %6llu   (paper: 42,262)\n\n",
              static_cast<unsigned long long>(events));

  // rollback_fuzzer with tracing.
  repl::RollbackFuzzerOptions options;
  options.seed = 2020;
  options.num_steps = bench.quick() ? 1500 : 18000;
  options.sync_all_before_writes = true;
  repl::ReplicaSet rs(options.config);
  trace::TraceLogger logger(&rs.clock());
  rs.AttachTraceSink(&logger);
  repl::RollbackFuzzerReport report = repl::RollbackFuzzer(options).Run(&rs);

  std::printf("rollback_fuzzer run:  %d steps, %lld writes, %lld rollbacks, "
              "%lld elections, %lld partitions\n",
              report.steps_executed, static_cast<long long>(report.writes),
              static_cast<long long>(report.rollbacks),
              static_cast<long long>(report.elections),
              static_cast<long long>(report.partitions));
  std::printf("rollback_fuzzer trace events: %llu   (paper: 2,683 from a "
              "representative run)\n",
              static_cast<unsigned long long>(logger.events_logged()));
  std::printf("committed writes durable:     %s\n",
              report.committed_writes_durable ? "yes" : "NO");

  bench.AddResult("scenarios_total", static_cast<double>(total));
  bench.AddResult("scenarios_incompatible", static_cast<double>(incompatible));
  bench.AddResult("scenarios_failed", static_cast<double>(failed));
  bench.AddResult("trace_events", static_cast<double>(events));
  bench.AddResult("fuzzer_trace_events",
                  static_cast<double>(logger.events_logged()));
  int exit_code = 0;
  if (failed > 0 || !report.committed_writes_durable) exit_code = 1;
  return bench.Finish(exit_code);
}
