// Microbenchmarks (google-benchmark) for the hot paths under the
// experiments: single-pair merges, list rebases, sync round trips, spec
// state hashing, and raw model-checking throughput.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ot/merge.h"
#include "ot/sync.h"
#include "otgo/go_merge.h"
#include "specs/raft_mongo_spec.h"
#include "specs/toy_specs.h"
#include "tlax/checker.h"

namespace {

using namespace xmodel;  // NOLINT — bench binaries only.
using ot::Operation;

void BM_MergeSingleTrivial(benchmark::State& state) {
  ot::MergeEngine engine;
  Operation a = Operation::Set(0, 1).At(0, 1);
  Operation b = Operation::Set(2, 9).At(0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Merge(a, b));
  }
}
BENCHMARK(BM_MergeSingleTrivial);

void BM_MergeSingleConflict(benchmark::State& state) {
  ot::MergeEngine engine;
  Operation a = Operation::Move(0, 2).At(0, 1);
  Operation b = Operation::Move(2, 0).At(0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Merge(a, b));
  }
}
BENCHMARK(BM_MergeSingleConflict);

void BM_MergeSwapDecomposition(benchmark::State& state) {
  ot::MergeEngine engine;
  Operation a = Operation::Swap(0, 3).At(0, 1);
  Operation b = Operation::Erase(1).At(0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Merge(a, b));
  }
}
BENCHMARK(BM_MergeSwapDecomposition);

void BM_ListRebase(benchmark::State& state) {
  const int64_t ops = state.range(0);
  ot::MergeEngine engine;
  ot::OpList left, right;
  for (int64_t i = 0; i < ops; ++i) {
    left.push_back(Operation::Insert(0, i).At(0, 1));
    right.push_back(Operation::Insert(0, 100 + i).At(0, 2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.MergeLists(left, right));
  }
  state.SetComplexityN(ops);
}
BENCHMARK(BM_ListRebase)->Arg(2)->Arg(8)->Arg(32)->Complexity();

void BM_GoListRebase(benchmark::State& state) {
  const int64_t ops = state.range(0);
  otgo::GoMergeEngine engine;
  ot::OpList left, right;
  for (int64_t i = 0; i < ops; ++i) {
    left.push_back(Operation::Insert(0, i).At(0, 1));
    right.push_back(Operation::Insert(0, 100 + i).At(0, 2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.TransformLists(left, right));
  }
  state.SetComplexityN(ops);
}
BENCHMARK(BM_GoListRebase)->Arg(2)->Arg(8)->Arg(32)->Complexity();

void BM_SyncRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    ot::SyncSystem sync({1, 2, 3}, 3);
    sync.ClientApply(0, Operation::Set(0, 9).At(0, 1)).ok();
    sync.ClientApply(1, Operation::Insert(1, 8).At(0, 2)).ok();
    sync.ClientApply(2, Operation::Erase(2).At(0, 3)).ok();
    benchmark::DoNotOptimize(sync.SyncAll());
  }
}
BENCHMARK(BM_SyncRoundTrip);

void BM_SpecStateConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(specs::RaftMongoSpec::MakeState(
        {"Leader", "Follower", "Follower"}, {2, 2, 1},
        {{2, 1}, {2, 1}, {0, 0}}, {{1, 2}, {1, 2}, {1}}));
  }
}
BENCHMARK(BM_SpecStateConstruction);

void BM_ModelCheckCounter(benchmark::State& state) {
  // Raw explicit-state throughput on a trivially-shaped spec.
  const int64_t limit = state.range(0);
  uint64_t states = 0;
  for (auto _ : state) {
    specs::CounterSpec spec(limit);
    auto result = tlax::ModelChecker().Check(spec);
    states = result.distinct_states;
    benchmark::DoNotOptimize(result);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelCheckCounter)->Arg(50)->Arg(200);

void BM_ModelCheckRaftMongoTiny(benchmark::State& state) {
  specs::RaftMongoConfig config;
  config.max_term = 1;
  config.max_oplog_len = 2;
  for (auto _ : state) {
    specs::RaftMongoSpec spec(config);
    benchmark::DoNotOptimize(tlax::ModelChecker().Check(spec));
  }
}
BENCHMARK(BM_ModelCheckRaftMongoTiny);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark rejects flags
// it does not know, so the harness flags (--quick, --metrics-out=FILE) are
// stripped before Initialize(). Quick mode runs a single cheap benchmark
// as the CI smoke test.
int main(int argc, char** argv) {
  xmodel::bench::Harness bench("merge_micro", argc, argv);

  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0 ||
        std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      continue;
    }
    filtered.push_back(argv[i]);
  }
  std::string quick_filter = "--benchmark_filter=BM_MergeSingleTrivial";
  if (bench.quick()) filtered.push_back(quick_filter.data());

  int filtered_argc = static_cast<int>(filtered.size());
  benchmark::Initialize(&filtered_argc, filtered.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                             filtered.data())) {
    return bench.Fail("unrecognized benchmark arguments");
  }
  size_t run = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (run == 0) return bench.Fail("no benchmarks matched");
  xmodel::obs::MetricsRegistry::Global()
      .GetCounter("bench.merge_micro.benchmarks.run")
      .Increment(run);
  bench.AddResult("benchmarks_run", static_cast<double>(run));
  return bench.Finish(0);
}
