// Experiment E1 (§4.2.3): the cost of making a specification
// trace-checkable. The paper reports that rewriting RaftMongo.tla for MBTC
// grew the state space from 42,034 states (2 s) to 371,368 states
// (14 minutes) at 3 nodes, <=3 terms, oplogs of <=3 entries.
//
// This bench model-checks both variants of our RaftMongo spec at the same
// bounds and prints the measured blow-up. Absolute counts differ from the
// paper's (a different checker and encoding); the SHAPE — an order of
// magnitude more states and a far super-proportional check time — is the
// claim under reproduction.

// A policy × worker sweep (see DESIGN.md "Parallel checking" and
// "Exploration policies") rides along: the detailed spec re-checked under
// both exploration policies at 1, 2, and 4 workers, asserting the
// distinct-state count never moves in ANY cell — level-sync by
// determinism, relaxed by its full-drain contract — while emitting
// states/sec and idle_fraction per (policy, workers) so the artifact
// shows what the work-stealing frontier buys over the barriers.
// `--workers=N` additionally runs the E1 rows themselves on N workers,
// and `--explore=relaxed` switches the E1 rows' policy.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "analysis/footprint.h"
#include "analysis/domain.h"
#include "analysis/independence.h"
#include "bench_util.h"
#include "common/strings.h"
#include "specs/raft_mongo_spec.h"
#include "tlax/checker.h"

using xmodel::specs::RaftMongoConfig;
using xmodel::specs::RaftMongoSpec;
using xmodel::specs::RaftMongoVariant;

namespace {

struct Row {
  const char* label;
  RaftMongoVariant variant;
  int64_t max_term;
  int64_t max_oplog;
  bool symmetry = false;
};

bool RunRow(const Row& row, int workers,
            xmodel::tlax::ExplorationPolicy policy, double* abstract_states,
            double* abstract_secs, xmodel::bench::Harness* bench) {
  RaftMongoConfig config;
  config.variant = row.variant;
  config.num_nodes = 3;
  config.max_term = row.max_term;
  config.max_oplog_len = row.max_oplog;
  config.use_symmetry = row.symmetry;
  RaftMongoSpec spec(config);
  xmodel::tlax::CheckerOptions options;
  options.num_workers = workers;
  options.exploration = policy;
  auto result = xmodel::tlax::ModelChecker(options).Check(spec);
  if (!result.status.ok()) {
    std::fprintf(stderr, "%s terms<=%lld oplog<=%lld aborted: %s\n",
                 row.label, static_cast<long long>(row.max_term),
                 static_cast<long long>(row.max_oplog),
                 result.status.ToString().c_str());
    return false;
  }
  const char* verdict = result.violation.has_value() ? "VIOLATION" : "ok";
  std::printf("%-22s terms<=%lld oplog<=%lld  %12llu states  %14llu "
              "generated  depth %2lld  %8.2f s  %s\n",
              row.label, static_cast<long long>(row.max_term),
              static_cast<long long>(row.max_oplog),
              static_cast<unsigned long long>(result.distinct_states),
              static_cast<unsigned long long>(result.generated_states),
              static_cast<long long>(result.diameter), result.seconds,
              verdict);
  if (row.variant == RaftMongoVariant::kAbstract && row.max_term == 3 &&
      row.max_oplog == 3) {
    *abstract_states = static_cast<double>(result.distinct_states);
    *abstract_secs = result.seconds;
  }
  if (row.variant == RaftMongoVariant::kDetailed && row.max_term == 3 &&
      row.max_oplog == 3) {
    double states_blowup =
        static_cast<double>(result.distinct_states) / *abstract_states;
    double time_blowup = result.seconds / *abstract_secs;
    std::printf("\nblow-up at the paper's bounds: %.1fx states, %.0fx "
                "check time\n",
                states_blowup, time_blowup);
    std::printf("paper reference:               8.8x states (42,034 -> "
                "371,368), ~420x time (2 s -> 14 min)\n");
    bench->AddResult("states_blowup", states_blowup);
    bench->AddResult("time_blowup", time_blowup);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xmodel::bench::Harness bench("state_space", argc, argv);
  int workers = 1;
  unsigned long long mem_budget_mb = 1;  // Tight budget for the spill sweep.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      workers = std::atoi(argv[i] + 10);
      if (workers < 0) {
        std::fprintf(stderr, "--workers must be >= 0\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--mem-budget-mb=", 16) == 0) {
      mem_budget_mb = std::strtoull(argv[i] + 16, nullptr, 10);
      if (mem_budget_mb == 0) {
        std::fprintf(stderr, "--mem-budget-mb must be >= 1\n");
        return 2;
      }
    }
  }
  xmodel::tlax::ExplorationPolicy policy =
      xmodel::tlax::ExplorationPolicy::kLevelSync;
  xmodel::tlax::ParseExplorationPolicy(bench.explore(), &policy);

  std::printf("E1: state-space cost of a trace-checkable specification\n");
  std::printf("(RaftMongo, 3 nodes; Abstract = pre-MBTC spec, Detailed = "
              "rewritten for MBTC; %d worker(s), %s exploration)\n\n",
              workers, bench.explore().c_str());

  double abstract_states = 1, abstract_secs = 1;

  Row rows[] = {
      {"Abstract", RaftMongoVariant::kAbstract, 2, 2, false},
      {"Detailed", RaftMongoVariant::kDetailed, 2, 2, false},
      {"Detailed+symmetry", RaftMongoVariant::kDetailed, 2, 2, true},
      {"Abstract", RaftMongoVariant::kAbstract, 2, 3, false},
      {"Detailed", RaftMongoVariant::kDetailed, 2, 3, false},
      {"Detailed+symmetry", RaftMongoVariant::kDetailed, 2, 3, true},
      {"Abstract", RaftMongoVariant::kAbstract, 3, 3, false},
      {"Detailed", RaftMongoVariant::kDetailed, 3, 3, false},
  };
  for (const Row& row : rows) {
    if (bench.quick() && row.max_term == 3) {
      std::printf("%-22s terms<=3 oplog<=3  (skipped: quick mode)\n",
                  row.label);
      continue;
    }
    if (!RunRow(row, workers, policy, &abstract_states, &abstract_secs,
                &bench)) {
      return bench.Fail("model check aborted");
    }
  }

  // Policy × worker sweep: the detailed spec, fixed bounds, both
  // exploration policies at rising worker counts. The state set must be
  // identical in every cell — level-sync is deterministic, and the
  // relaxed full-drain contract pins distinct at any worker count — so a
  // divergence anywhere in the grid fails the bench outright. What the
  // grid is for: states/sec and idle_fraction per (policy, workers),
  // showing how much of the barrier wait the work-stealing frontier
  // converts into throughput.
  {
    RaftMongoConfig config;
    config.variant = RaftMongoVariant::kDetailed;
    config.num_nodes = 3;
    config.max_term = 2;
    config.max_oplog_len = bench.quick() ? 2 : 3;
    RaftMongoSpec spec(config);
    unsigned hw = std::thread::hardware_concurrency();
    std::printf("\npolicy x worker scaling (Detailed, terms<=2 oplog<=%lld, "
                "%u hardware thread(s)):\n",
                static_cast<long long>(config.max_oplog_len), hw);
    if (hw < 2) {
      std::printf("  note: single-core machine — expect overhead, not "
                  "speedup; run on >=4 cores to see scaling\n");
    }
    bench.AddResult("hardware_threads", static_cast<double>(hw));
    const std::vector<int> sweep =
        bench.quick() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    unsigned long long base_distinct = 0;
    double base_rate = 0;
    for (auto sweep_policy : {xmodel::tlax::ExplorationPolicy::kLevelSync,
                              xmodel::tlax::ExplorationPolicy::kRelaxed}) {
      const char* pname = xmodel::tlax::ExplorationPolicyName(sweep_policy);
      for (int w : sweep) {
        xmodel::tlax::CheckerOptions options;
        options.num_workers = w;
        options.exploration = sweep_policy;
        // Live plane: heartbeats + /progress while the sweep runs (no-ops
        // unless --serve is up), and the idle-time profiler result below.
        options.watchdog = bench.watchdog();
        options.progress_reporter = bench.progress();
        auto result = xmodel::tlax::ModelChecker(options).Check(spec);
        if (!result.status.ok()) {
          return bench.Fail("policy/worker-scaling check aborted");
        }
        double rate = result.seconds > 0
                          ? static_cast<double>(result.generated_states) /
                                result.seconds
                          : 0;
        if (base_distinct == 0) {
          base_distinct = result.distinct_states;
          base_rate = rate;
        } else if (result.distinct_states != base_distinct) {
          return bench.Fail(xmodel::common::StrCat(
              "exploration sweep changed distinct_states: ", base_distinct,
              " at level w1 vs ", result.distinct_states, " at ", pname,
              " w", w));
        }
        double speedup = base_rate > 0 ? rate / base_rate : 0;
        std::printf("  %-7s workers=%d  %12llu states  depth %2lld  "
                    "%8.2f s  %10.0f states/sec  %.2fx  idle %.1f%%\n",
                    pname, result.workers_used,
                    static_cast<unsigned long long>(result.distinct_states),
                    static_cast<long long>(result.diameter), result.seconds,
                    rate, speedup, 100.0 * result.idle_fraction);
        bench.AddResult(
            xmodel::common::StrCat(pname, "_w", w, "_states_per_sec"),
            rate);
        bench.AddResult(
            xmodel::common::StrCat(pname, "_w", w, "_idle_fraction"),
            result.idle_fraction);
        if (sweep_policy == xmodel::tlax::ExplorationPolicy::kLevelSync) {
          // Keep the pre-sweep key names so dashboards reading the PR 7
          // artifact shape stay green; the barrier idle fraction is the
          // baseline the relaxed rows are judged against.
          bench.AddResult(
              xmodel::common::StrCat("workers", w, "_states_per_sec"),
              rate);
          bench.AddResult(
              xmodel::common::StrCat("workers", w, "_idle_fraction"),
              result.barrier_idle_fraction);
          if (w > 1) {
            bench.AddResult(
                xmodel::common::StrCat("scaling_speedup_w", w), speedup);
          }
        }
      }
    }
  }

  // Out-of-core spill sweep: the same check with the seen-set unlimited
  // in memory vs. bounded to --mem-budget-mb (default 1 MB — tight
  // enough that the hot table evicts several generations of sorted run
  // files and the frontier overflows to segment files). The out-of-core
  // contract is that none of this is observable in the results: distinct
  // states must be bit-identical, or the bench fails outright. What the
  // rows show is the price — states/sec with and without the disk tier,
  // plus the spill_* counters for the artifact.
  {
    RaftMongoConfig config;
    config.variant = RaftMongoVariant::kDetailed;
    config.num_nodes = 3;
    config.max_term = 2;
    config.max_oplog_len = bench.quick() ? 2 : 3;
    RaftMongoSpec spec(config);
    std::printf("\nout-of-core spill sweep (Detailed, terms<=2 oplog<=%lld, "
                "budget %llu MB):\n",
                static_cast<long long>(config.max_oplog_len), mem_budget_mb);
    unsigned long long unlimited_distinct = 0;
    double unlimited_rate = 0;
    for (bool tight : {false, true}) {
      xmodel::tlax::CheckerOptions options;
      options.num_workers = workers;
      options.watchdog = bench.watchdog();
      options.progress_reporter = bench.progress();
      if (tight) {
        // Spill dir left empty: a per-process temp directory, removed
        // when the run finishes.
        options.memory_budget_mb = mem_budget_mb;
      }
      auto result = xmodel::tlax::ModelChecker(options).Check(spec);
      if (!result.status.ok()) {
        return bench.Fail("spill sweep check aborted");
      }
      double rate = result.seconds > 0
                        ? static_cast<double>(result.generated_states) /
                              result.seconds
                        : 0;
      if (!tight) {
        unlimited_distinct = result.distinct_states;
        unlimited_rate = rate;
        std::printf("  unlimited            %12llu states  %8.2f s  "
                    "%10.0f states/sec\n",
                    static_cast<unsigned long long>(result.distinct_states),
                    result.seconds, rate);
        bench.AddResult("spill_unlimited_states_per_sec", rate);
        continue;
      }
      if (result.distinct_states != unlimited_distinct) {
        return bench.Fail(xmodel::common::StrCat(
            "out-of-core run changed distinct_states: ", unlimited_distinct,
            " unlimited vs ", result.distinct_states, " at ", mem_budget_mb,
            " MB"));
      }
      const double cache_probes = static_cast<double>(
          result.spill_cache_hits + result.spill_cache_misses);
      const double cache_hit_ratio =
          cache_probes > 0
              ? static_cast<double>(result.spill_cache_hits) / cache_probes
              : 0;
      const double mstates =
          static_cast<double>(result.distinct_states) / 1e6;
      const double probe_ms_per_mstate =
          mstates > 0 ? result.spill_probe_ms / mstates : 0;
      std::printf("  budget %4llu MB       %12llu states  %8.2f s  "
                  "%10.0f states/sec (%.2fx)  %llu generations  %llu runs  "
                  "%.1f MB spilled  %llu frontier segment(s)  cache hit "
                  "%.1f%%  probe %.0f ms/Mstate\n",
                  mem_budget_mb,
                  static_cast<unsigned long long>(result.distinct_states),
                  result.seconds, rate,
                  unlimited_rate > 0 ? rate / unlimited_rate : 0,
                  static_cast<unsigned long long>(result.spill_generations),
                  static_cast<unsigned long long>(result.spill_runs),
                  static_cast<double>(result.spill_bytes) / (1 << 20),
                  static_cast<unsigned long long>(result.frontier_segments),
                  100.0 * cache_hit_ratio, probe_ms_per_mstate);
      bench.AddResult("spill_tight_states_per_sec", rate);
      bench.AddResult("spill_generations",
                      static_cast<double>(result.spill_generations));
      bench.AddResult("spill_runs", static_cast<double>(result.spill_runs));
      bench.AddResult("spill_records",
                      static_cast<double>(result.spill_records));
      bench.AddResult("spill_bytes", static_cast<double>(result.spill_bytes));
      bench.AddResult("spill_compactions",
                      static_cast<double>(result.spill_compactions));
      bench.AddResult("spill_probe_ms", result.spill_probe_ms);
      bench.AddResult("spill_merge_ms", result.spill_merge_ms);
      bench.AddResult("spill_frontier_segments",
                      static_cast<double>(result.frontier_segments));
      bench.AddResult("spill_cache_hit_ratio", cache_hit_ratio);
      bench.AddResult("spill_probe_ms_per_mstate", probe_ms_per_mstate);
    }

    // Tight-budget worker scaling: the disk tier must keep scaling with
    // workers like the in-RAM checker does (batched probes + the shared
    // block cache are the mechanisms), and distinct must stay
    // bit-identical to the unlimited run in every cell — any divergence
    // fails the bench outright.
    const std::vector<int> spill_sweep =
        bench.quick() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
    double spill_w1_rate = 0;
    for (int w : spill_sweep) {
      xmodel::tlax::CheckerOptions options;
      options.num_workers = w;
      options.memory_budget_mb = mem_budget_mb;
      options.watchdog = bench.watchdog();
      auto result = xmodel::tlax::ModelChecker(options).Check(spec);
      if (!result.status.ok()) {
        return bench.Fail("tight-budget scaling check aborted");
      }
      if (result.distinct_states != unlimited_distinct) {
        return bench.Fail(xmodel::common::StrCat(
            "tight-budget scaling changed distinct_states: ",
            unlimited_distinct, " unlimited vs ", result.distinct_states,
            " at w", w));
      }
      double rate = result.seconds > 0
                        ? static_cast<double>(result.generated_states) /
                              result.seconds
                        : 0;
      if (w == 1) spill_w1_rate = rate;
      std::printf("  budget %4llu MB w=%d   %12llu states  %8.2f s  "
                  "%10.0f states/sec  %.2fx\n",
                  mem_budget_mb, result.workers_used,
                  static_cast<unsigned long long>(result.distinct_states),
                  result.seconds, rate,
                  spill_w1_rate > 0 ? rate / spill_w1_rate : 0);
      bench.AddResult(
          xmodel::common::StrCat("spill_w", w, "_states_per_sec"), rate);
    }
  }

  // Partial-order-reduction hints from the action-independence analysis:
  // the same exploration with and without the commutativity matrix,
  // measured through the metrics registry (checker.states.generated and
  // checker.por.actions_slept accumulate per run; resetting between runs
  // isolates each one). The reachable state set is preserved by
  // construction (sleep sets prune redundant interleavings, not states),
  // so `distinct` must match — what drops is the successors generated.
  // RaftMongo's footprint-only reduction is modest: its state constraint
  // reads term and oplog, and an action writing a constraint-read variable
  // is disqualified outright (the pruned interleaving could pass outside
  // the explored region). The abstract-domain pass recovers most of that:
  // an exhaustive probe proving an action's successors closed under the
  // constraint re-qualifies it, so the refined matrix sleeps strictly more
  // while visiting the identical state set — measured below against the
  // footprint-only baseline.
  auto& registry = xmodel::obs::MetricsRegistry::Global();
  auto counter_value = [](const xmodel::obs::RegistrySnapshot& snapshot,
                          const char* name) -> unsigned long long {
    const xmodel::obs::MetricSnapshot* m = snapshot.Find(name);
    return m == nullptr ? 0
                        : static_cast<unsigned long long>(m->value);
  };

  std::printf("\nindependence-guided exploration (sleep-set hints, "
              "registry-measured):\n");
  for (auto variant :
       {RaftMongoVariant::kAbstract, RaftMongoVariant::kDetailed}) {
    RaftMongoConfig config;
    config.variant = variant;
    config.num_nodes = 3;
    config.max_term = 2;
    config.max_oplog_len = 2;
    RaftMongoSpec spec(config);
    auto footprints = xmodel::analysis::InferFootprints(spec);
    auto matrix = std::make_shared<xmodel::tlax::ActionIndependence>(
        xmodel::analysis::ComputeIndependence(spec, footprints));

    registry.Reset();
    auto plain = xmodel::tlax::ModelChecker().Check(spec);
    xmodel::obs::RegistrySnapshot before = registry.Snapshot();

    registry.Reset();
    xmodel::tlax::CheckerOptions por_options;
    por_options.independence = matrix;
    auto reduced = xmodel::tlax::ModelChecker(por_options).Check(spec);
    xmodel::obs::RegistrySnapshot after = registry.Snapshot();

    if (!plain.status.ok() || !reduced.status.ok()) {
      return bench.Fail("POR comparison check aborted");
    }

    unsigned long long generated_before =
        counter_value(before, "checker.states.generated");
    unsigned long long generated_after =
        counter_value(after, "checker.states.generated");
    std::printf("%-22s %zu commuting pair(s)  distinct %llu -> %llu  "
                "generated %llu -> %llu (%.1f%% pruned, %llu slept)\n",
                spec.name().c_str(), matrix->NumCommutingPairs(),
                counter_value(before, "checker.states.distinct"),
                counter_value(after, "checker.states.distinct"),
                generated_before, generated_after,
                generated_before == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(generated_after) /
                                         static_cast<double>(
                                             generated_before)),
                counter_value(after, "checker.por.actions_slept"));
    if (variant == RaftMongoVariant::kDetailed) {
      bench.AddResult("por_generated_before",
                      static_cast<double>(generated_before));
      bench.AddResult("por_generated_after",
                      static_cast<double>(generated_after));
      bench.AddResult(
          "por_actions_slept",
          static_cast<double>(
              counter_value(after, "checker.por.actions_slept")));
    }

    // Value-sensitive refinement on top: the abstract-domain probe must
    // exhaust the reachable region (the constraint-closure proof is
    // worthless otherwise), and the refined matrix must keep the state
    // space bit-identical while sleeping strictly more actions.
    xmodel::analysis::DomainOptions domain_options;
    domain_options.max_samples = 1 << 18;
    auto domains = xmodel::analysis::InferDomains(spec, domain_options);
    auto refined =
        xmodel::analysis::RefineIndependence(spec, footprints, domains);
    registry.Reset();
    xmodel::tlax::CheckerOptions refined_options;
    refined_options.independence =
        std::make_shared<xmodel::tlax::ActionIndependence>(refined.matrix);
    auto refined_run =
        xmodel::tlax::ModelChecker(refined_options).Check(spec);
    xmodel::obs::RegistrySnapshot refined_snapshot = registry.Snapshot();
    if (!refined_run.status.ok()) {
      return bench.Fail("refined POR check aborted");
    }
    if (!domains.exhaustive ||
        refined_run.distinct_states != reduced.distinct_states ||
        refined_run.diameter != reduced.diameter ||
        refined_run.por_slept_actions <= reduced.por_slept_actions) {
      return bench.Fail(
          "value-sensitive refinement must preserve distinct/diameter and "
          "sleep strictly more than the footprint-only baseline");
    }
    std::printf("%-22s refined %zu -> %zu pair(s)  slept %llu -> %llu  "
                "generated %llu -> %llu\n",
                spec.name().c_str(), refined.base_commuting,
                refined.matrix.NumCommutingPairs(),
                static_cast<unsigned long long>(reduced.por_slept_actions),
                static_cast<unsigned long long>(
                    refined_run.por_slept_actions),
                generated_after,
                counter_value(refined_snapshot, "checker.states.generated"));
    if (variant == RaftMongoVariant::kDetailed) {
      bench.AddResult("por_refined_pairs",
                      static_cast<double>(refined.matrix.NumCommutingPairs()));
      bench.AddResult("por_refined_slept",
                      static_cast<double>(refined_run.por_slept_actions));
      bench.AddResult(
          "por_refined_generated",
          static_cast<double>(counter_value(refined_snapshot,
                                            "checker.states.generated")));
    }
  }
  return bench.Finish(0);
}
