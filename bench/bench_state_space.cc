// Experiment E1 (§4.2.3): the cost of making a specification
// trace-checkable. The paper reports that rewriting RaftMongo.tla for MBTC
// grew the state space from 42,034 states (2 s) to 371,368 states
// (14 minutes) at 3 nodes, <=3 terms, oplogs of <=3 entries.
//
// This bench model-checks both variants of our RaftMongo spec at the same
// bounds and prints the measured blow-up. Absolute counts differ from the
// paper's (a different checker and encoding); the SHAPE — an order of
// magnitude more states and a far super-proportional check time — is the
// claim under reproduction.

#include <cstdio>
#include <memory>

#include "analysis/footprint.h"
#include "analysis/independence.h"
#include "bench_util.h"
#include "specs/raft_mongo_spec.h"
#include "tlax/checker.h"

using xmodel::specs::RaftMongoConfig;
using xmodel::specs::RaftMongoSpec;
using xmodel::specs::RaftMongoVariant;

namespace {

struct Row {
  const char* label;
  RaftMongoVariant variant;
  int64_t max_term;
  int64_t max_oplog;
  bool symmetry = false;
};

bool RunRow(const Row& row, double* abstract_states, double* abstract_secs,
            xmodel::bench::Harness* bench) {
  RaftMongoConfig config;
  config.variant = row.variant;
  config.num_nodes = 3;
  config.max_term = row.max_term;
  config.max_oplog_len = row.max_oplog;
  config.use_symmetry = row.symmetry;
  RaftMongoSpec spec(config);
  auto result = xmodel::tlax::ModelChecker().Check(spec);
  if (!result.status.ok()) {
    std::fprintf(stderr, "%s terms<=%lld oplog<=%lld aborted: %s\n",
                 row.label, static_cast<long long>(row.max_term),
                 static_cast<long long>(row.max_oplog),
                 result.status.ToString().c_str());
    return false;
  }
  const char* verdict = result.violation.has_value() ? "VIOLATION" : "ok";
  std::printf("%-22s terms<=%lld oplog<=%lld  %12llu states  %14llu "
              "generated  depth %2lld  %8.2f s  %s\n",
              row.label, static_cast<long long>(row.max_term),
              static_cast<long long>(row.max_oplog),
              static_cast<unsigned long long>(result.distinct_states),
              static_cast<unsigned long long>(result.generated_states),
              static_cast<long long>(result.diameter), result.seconds,
              verdict);
  if (row.variant == RaftMongoVariant::kAbstract && row.max_term == 3 &&
      row.max_oplog == 3) {
    *abstract_states = static_cast<double>(result.distinct_states);
    *abstract_secs = result.seconds;
  }
  if (row.variant == RaftMongoVariant::kDetailed && row.max_term == 3 &&
      row.max_oplog == 3) {
    double states_blowup =
        static_cast<double>(result.distinct_states) / *abstract_states;
    double time_blowup = result.seconds / *abstract_secs;
    std::printf("\nblow-up at the paper's bounds: %.1fx states, %.0fx "
                "check time\n",
                states_blowup, time_blowup);
    std::printf("paper reference:               8.8x states (42,034 -> "
                "371,368), ~420x time (2 s -> 14 min)\n");
    bench->AddResult("states_blowup", states_blowup);
    bench->AddResult("time_blowup", time_blowup);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xmodel::bench::Harness bench("state_space", argc, argv);
  std::printf("E1: state-space cost of a trace-checkable specification\n");
  std::printf("(RaftMongo, 3 nodes; Abstract = pre-MBTC spec, Detailed = "
              "rewritten for MBTC)\n\n");

  double abstract_states = 1, abstract_secs = 1;

  Row rows[] = {
      {"Abstract", RaftMongoVariant::kAbstract, 2, 2, false},
      {"Detailed", RaftMongoVariant::kDetailed, 2, 2, false},
      {"Detailed+symmetry", RaftMongoVariant::kDetailed, 2, 2, true},
      {"Abstract", RaftMongoVariant::kAbstract, 2, 3, false},
      {"Detailed", RaftMongoVariant::kDetailed, 2, 3, false},
      {"Detailed+symmetry", RaftMongoVariant::kDetailed, 2, 3, true},
      {"Abstract", RaftMongoVariant::kAbstract, 3, 3, false},
      {"Detailed", RaftMongoVariant::kDetailed, 3, 3, false},
  };
  for (const Row& row : rows) {
    if (bench.quick() && row.max_term == 3) {
      std::printf("%-22s terms<=3 oplog<=3  (skipped: quick mode)\n",
                  row.label);
      continue;
    }
    if (!RunRow(row, &abstract_states, &abstract_secs, &bench)) {
      return bench.Fail("model check aborted");
    }
  }

  // Partial-order-reduction hints from the action-independence analysis:
  // the same exploration with and without the commutativity matrix,
  // measured through the metrics registry (checker.states.generated and
  // checker.por.actions_slept accumulate per run; resetting between runs
  // isolates each one). The reachable state set is preserved by
  // construction (sleep sets prune redundant interleavings, not states),
  // so `distinct` must match — what drops is the successors generated.
  // RaftMongo's reduction is modest: its state constraint reads term and
  // oplog, and an action writing a constraint-read variable can commute
  // with nothing (the pruned interleaving could pass outside the explored
  // region), which disqualifies most pairs. Specs without constraints fare
  // far better — see the commutativity tests on the toy specs.
  auto& registry = xmodel::obs::MetricsRegistry::Global();
  auto counter_value = [](const xmodel::obs::RegistrySnapshot& snapshot,
                          const char* name) -> unsigned long long {
    const xmodel::obs::MetricSnapshot* m = snapshot.Find(name);
    return m == nullptr ? 0
                        : static_cast<unsigned long long>(m->value);
  };

  std::printf("\nindependence-guided exploration (sleep-set hints, "
              "registry-measured):\n");
  for (auto variant :
       {RaftMongoVariant::kAbstract, RaftMongoVariant::kDetailed}) {
    RaftMongoConfig config;
    config.variant = variant;
    config.num_nodes = 3;
    config.max_term = 2;
    config.max_oplog_len = 2;
    RaftMongoSpec spec(config);
    auto footprints = xmodel::analysis::InferFootprints(spec);
    auto matrix = std::make_shared<xmodel::tlax::ActionIndependence>(
        xmodel::analysis::ComputeIndependence(spec, footprints));

    registry.Reset();
    auto plain = xmodel::tlax::ModelChecker().Check(spec);
    xmodel::obs::RegistrySnapshot before = registry.Snapshot();

    registry.Reset();
    xmodel::tlax::CheckerOptions por_options;
    por_options.independence = matrix;
    auto reduced = xmodel::tlax::ModelChecker(por_options).Check(spec);
    xmodel::obs::RegistrySnapshot after = registry.Snapshot();

    if (!plain.status.ok() || !reduced.status.ok()) {
      return bench.Fail("POR comparison check aborted");
    }

    unsigned long long generated_before =
        counter_value(before, "checker.states.generated");
    unsigned long long generated_after =
        counter_value(after, "checker.states.generated");
    std::printf("%-22s %zu commuting pair(s)  distinct %llu -> %llu  "
                "generated %llu -> %llu (%.1f%% pruned, %llu slept)\n",
                spec.name().c_str(), matrix->NumCommutingPairs(),
                counter_value(before, "checker.states.distinct"),
                counter_value(after, "checker.states.distinct"),
                generated_before, generated_after,
                generated_before == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(generated_after) /
                                         static_cast<double>(
                                             generated_before)),
                counter_value(after, "checker.por.actions_slept"));
    if (variant == RaftMongoVariant::kDetailed) {
      bench.AddResult("por_generated_before",
                      static_cast<double>(generated_before));
      bench.AddResult("por_generated_after",
                      static_cast<double>(generated_after));
      bench.AddResult(
          "por_actions_slept",
          static_cast<double>(
              counter_value(after, "checker.por.actions_slept")));
    }
  }
  return bench.Finish(0);
}
