// Experiment E5 (§5.1): what model-checking the OT specification finds.
// The paper reports that TLC (a) caught transcription errors as safety
// violations while the spec was being written, and (b) found a case in the
// ArraySwap x ArrayMove merge rule that never terminates — a
// StackOverflowError revealing a real bug in the mature C++ code, which
// led to ArraySwap's deprecation.
//
// Also measures the §5.1.2 state-space-constraint ablation: exploring
// clients' operations in every order instead of ascending id order.

#include <cstdio>

#include "bench_util.h"
#include "ot/merge.h"
#include "specs/array_ot_spec.h"
#include "tlax/checker.h"

using namespace xmodel;  // NOLINT — bench binaries only.

namespace {

bool Report(const char* label, const specs::ArrayOtConfig& config) {
  specs::ArrayOtSpec spec(config);
  auto result = tlax::ModelChecker().Check(spec);
  if (!result.status.ok()) {
    std::fprintf(stderr, "%s: check aborted: %s\n", label,
                 result.status.ToString().c_str());
    return false;
  }
  std::printf("%-34s %9llu states  %7.2f s  %s",
              label,
              static_cast<unsigned long long>(result.distinct_states),
              result.seconds,
              result.violation.has_value()
                  ? result.violation->kind.c_str()
                  : "invariants hold");
  if (result.violation.has_value()) {
    std::printf(" (trace length %zu)", result.violation->trace.size());
  }
  std::printf("\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness bench("ot_model_check", argc, argv);
  std::printf("E5: model-checking the array_ot specification\n\n");

  specs::ArrayOtConfig base;
  if (bench.quick()) base.num_clients = 2;  // Smoke-size state space.
  if (!Report(bench.quick() ? "paper config (2 clients, quick)"
                            : "paper config (17 ops/client)",
              base)) {
    return bench.Fail("base model check aborted");
  }

  specs::ArrayOtConfig swap_fixed = base;
  swap_fixed.include_swap = true;
  if (!Report("with ArraySwap, fixed rules", swap_fixed)) {
    return bench.Fail("swap model check aborted");
  }

  specs::ArrayOtConfig swap_buggy = swap_fixed;
  swap_buggy.swap_move_bug = true;
  if (!Report("with ArraySwap, REAL BUG", swap_buggy)) {
    return bench.Fail("buggy-swap model check aborted");
  }

  specs::ArrayOtConfig transcription = base;
  transcription.inject_transcription_error = true;
  if (!Report("with a transcription error", transcription)) {
    return bench.Fail("transcription model check aborted");
  }

  std::printf("\npaper reference: the swap/move non-termination surfaced as "
              "a TLC StackOverflowError\n");
  std::printf("and \"became the deciding factor to not support a dedicated "
              "ArraySwap operation\" in Go;\n");
  std::printf("transcription errors were \"readily\" caught as safety "
              "violations (§5.1.1).\n\n");

  // The same bug in the C++ implementation, hit directly (the paper: "this
  // issue was found to also exist in the C++ code").
  ot::MergeConfig buggy_config;
  buggy_config.enable_swap_move_bug = true;
  ot::MergeEngine buggy(buggy_config);
  auto merged = buggy.Merge(ot::Operation::Move(0, 2).At(0, 1),
                            ot::Operation::Swap(0, 2).At(0, 2));
  std::printf("C++ implementation, same input:    %s\n",
              merged.ok() ? "terminated (unexpected!)"
                          : merged.status().ToString().c_str());
  bench.AddResult("cpp_bug_reproduced", std::string(merged.ok() ? "no" : "yes"));
  return bench.Finish(merged.ok() ? 1 : 0);
}
