// Experiment E6 (§5.2): exhaustive test-case generation. The paper: "For
// an initial array containing three elements and with three clients each
// performing a single operation, the Golang program generated 4,913 C++
// test cases", all of which passed, proving the TLA+ spec, the C++
// implementation, and the Golang implementation agree.
//
// This bench runs the whole pipeline — model check, DOT dump, DOT parse,
// extraction, in-process execution against BOTH implementations — and
// times each stage.

#include <cstdio>

#include "bench_util.h"
#include "common/clock.h"
#include "mbtcg/generator.h"
#include "otgo/go_merge.h"

using namespace xmodel;  // NOLINT — bench binaries only.

namespace {

double Seconds(int64_t start_ns) {
  return static_cast<double>(common::MonotonicClock::Real()->NowNanos() -
                             start_ns) *
         1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness bench("mbtcg", argc, argv);
  std::printf("E6: model-based test-case generation, end to end\n\n");

  specs::ArrayOtConfig config;  // The paper's configuration.
  if (bench.quick()) config.num_clients = 2;  // ~dozens of cases, not 4,913.
  std::vector<mbtcg::TestCase> cases;
  int64_t t0 = common::MonotonicClock::Real()->NowNanos();
  mbtcg::GenerationReport generation =
      mbtcg::GenerateTestCases(config, &cases);
  double generation_seconds = Seconds(t0);
  if (!generation.status.ok()) {
    return bench.Fail(generation.status.ToString());
  }

  std::printf("spec states explored:     %llu (model check %.2f s)\n",
              static_cast<unsigned long long>(generation.spec_states),
              generation.model_check_seconds);
  std::printf("DOT dump parsed back:     %.1f MB\n",
              static_cast<double>(generation.dot_bytes) / 1e6);
  std::printf("test cases generated:     %zu   (paper: 4,913)\n",
              cases.size());
  std::printf("pipeline total:           %.2f s\n\n", generation_seconds);

  t0 = common::MonotonicClock::Real()->NowNanos();
  mbtcg::RunReport cpp_run = mbtcg::RunTestCases(cases);
  std::printf("C++ implementation:       %zu/%zu passed (%.2f s)\n",
              cpp_run.passed, cpp_run.total, Seconds(t0));

  otgo::GoMergeEngine go;
  t0 = common::MonotonicClock::Real()->NowNanos();
  mbtcg::RunReport go_run = mbtcg::RunTestCases(cases, &go);
  std::printf("Go   implementation:      %zu/%zu passed (%.2f s)\n",
              go_run.passed, go_run.total, Seconds(t0));

  for (const std::string& f : cpp_run.failures) {
    std::printf("  C++ FAIL: %s\n", f.c_str());
  }
  for (const std::string& f : go_run.failures) {
    std::printf("  Go  FAIL: %s\n", f.c_str());
  }

  // Emitted-file size, for the record (the paper compiled its generated
  // tests with Realm's unit-test framework).
  std::string file = mbtcg::GenerateCppTestFile(cases);
  std::printf("\ngenerated gtest source:   %.1f MB across %zu tests\n",
              static_cast<double>(file.size()) / 1e6, cases.size());
  std::printf("paper reference: all 4,913 generated cases passed, giving "
              "100%% branch coverage\n");
  std::printf("and confidence that the C++ and Golang merge rules always "
              "agree.\n");

  bench.AddResult("cases_generated", static_cast<double>(cases.size()));
  bench.AddResult("generation_seconds", generation_seconds);
  bench.AddResult("cpp_passed", static_cast<double>(cpp_run.passed));
  bench.AddResult("go_passed", static_cast<double>(go_run.passed));
  return bench.Finish((cpp_run.all_passed() && go_run.all_passed()) ? 0 : 1);
}
