// Experiment E6 (§5.2): exhaustive test-case generation. The paper: "For
// an initial array containing three elements and with three clients each
// performing a single operation, the Golang program generated 4,913 C++
// test cases", all of which passed, proving the TLA+ spec, the C++
// implementation, and the Golang implementation agree.
//
// This bench runs the whole pipeline and times each stage, three ways:
//   1. a --workers scaling sweep (1/2/4) of the end-to-end generation,
//      asserting every sweep point produces the identical case list;
//   2. the --via-dot fidelity path at 1 worker, against the in-memory
//      fast path (the serialize-parse round trip it replaces by default);
//   3. an extraction micro-benchmark: repeated ExtractTestCases over the
//      recorded graph, in-memory vs DOT-parsed.
// Then it executes the cases against BOTH merge implementations.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "mbtcg/generator.h"
#include "otgo/go_merge.h"
#include "tlax/checker.h"

using namespace xmodel;  // NOLINT — bench binaries only.

namespace {

int64_t NowNs() { return common::MonotonicClock::Real()->NowNanos(); }

double Seconds(int64_t start_ns) {
  return static_cast<double>(NowNs() - start_ns) * 1e-9;
}

bool SameCases(const std::vector<mbtcg::TestCase>& a,
               const std::vector<mbtcg::TestCase>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].case_id != b[i].case_id) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness bench("mbtcg", argc, argv);
  std::printf("E6: model-based test-case generation, end to end\n\n");

  specs::ArrayOtConfig config;  // The paper's configuration.
  if (bench.quick()) config.num_clients = 2;  // ~dozens of cases, not 4,913.

  // --- Workers scaling sweep -----------------------------------------------
  std::vector<mbtcg::TestCase> cases;  // The 1-worker baseline list.
  double baseline_seconds = 0;
  double w4_seconds = 0;
  for (int workers : {1, 2, 4}) {
    mbtcg::GenerateOptions options;
    options.num_workers = workers;
    std::vector<mbtcg::TestCase> sweep_cases;
    int64_t t0 = NowNs();
    mbtcg::GenerationReport generation =
        mbtcg::GenerateTestCases(config, &sweep_cases, options);
    const double seconds = Seconds(t0);
    if (!generation.status.ok()) {
      return bench.Fail(generation.status.ToString());
    }
    if (workers == 1) {
      cases = std::move(sweep_cases);
      baseline_seconds = seconds;
      std::printf("spec states explored:     %llu\n",
                  static_cast<unsigned long long>(generation.spec_states));
      std::printf("test cases generated:     %zu   (paper: 4,913)\n\n",
                  cases.size());
    } else if (!SameCases(cases, sweep_cases)) {
      return bench.Fail(common::StrCat("case list diverged at workers=",
                                       workers, " — determinism bug"));
    }
    if (workers == 4) w4_seconds = seconds;
    std::printf("generation @ %d worker(s):  %.2f s "
                "(model check %.2f s, extract %.2f s)\n",
                workers, seconds, generation.model_check_seconds,
                generation.extract_seconds);
    bench.AddResult(common::StrCat("generation_seconds_w", workers), seconds);
  }
  std::printf("speedup 4w / 1w:          %.2fx\n\n",
              w4_seconds > 0 ? baseline_seconds / w4_seconds : 0);
  bench.AddResult("speedup_w4",
                  w4_seconds > 0 ? baseline_seconds / w4_seconds : 0);

  // --- In-memory vs the --via-dot round trip (1 worker) --------------------
  {
    mbtcg::GenerateOptions options;
    options.via_dot = true;
    std::vector<mbtcg::TestCase> dot_cases;
    int64_t t0 = NowNs();
    mbtcg::GenerationReport generation =
        mbtcg::GenerateTestCases(config, &dot_cases, options);
    const double seconds = Seconds(t0);
    if (!generation.status.ok()) {
      return bench.Fail(generation.status.ToString());
    }
    if (!SameCases(cases, dot_cases)) {
      return bench.Fail("--via-dot case list diverged from in-memory path");
    }
    std::printf("generation --via-dot:     %.2f s (DOT dump %.1f MB; "
                "in-memory path: %.2f s)\n\n",
                seconds, static_cast<double>(generation.dot_bytes) / 1e6,
                baseline_seconds);
    bench.AddResult("via_dot_seconds", seconds);
    bench.AddResult("dot_bytes", static_cast<double>(generation.dot_bytes));
  }

  // --- Extraction micro-benchmark ------------------------------------------
  // Isolates the ExtractTestCases stage (pre-decoded labels, per-leaf
  // fan-out) from the model check: repeated extraction over one recorded
  // graph, through both graph representations.
  {
    specs::ArrayOtSpec spec(config);
    tlax::CheckerOptions checker_options;
    checker_options.record_graph = true;
    tlax::CheckResult checked =
        tlax::ModelChecker(checker_options).Check(spec);
    if (!checked.status.ok()) return bench.Fail(checked.status.ToString());
    const std::string dot = checked.graph->ToDot(spec.variables());
    auto parsed = mbtcg::ParseDot(dot);
    if (!parsed.ok()) return bench.Fail(parsed.status().ToString());

    const int reps = bench.quick() ? 3 : 10;
    int64_t t0 = NowNs();
    for (int r = 0; r < reps; ++r) {
      auto extracted = mbtcg::ExtractTestCases(*checked.graph,
                                               spec.variables(),
                                               config.num_clients);
      if (!extracted.ok()) return bench.Fail(extracted.status().ToString());
    }
    const double inmem = Seconds(t0) / reps;
    t0 = NowNs();
    for (int r = 0; r < reps; ++r) {
      auto extracted = mbtcg::ExtractTestCases(*parsed, config.num_clients);
      if (!extracted.ok()) return bench.Fail(extracted.status().ToString());
    }
    const double from_dot = Seconds(t0) / reps;
    std::printf("extraction (in-memory):   %.4f s/pass over %d pass(es)\n",
                inmem, reps);
    std::printf("extraction (DOT graph):   %.4f s/pass\n\n", from_dot);
    bench.AddResult("extract_inmem_seconds", inmem);
    bench.AddResult("extract_dot_seconds", from_dot);
  }

  // --- Execute against both implementations --------------------------------
  int64_t t0 = NowNs();
  mbtcg::RunReport cpp_run = mbtcg::RunTestCases(cases);
  std::printf("C++ implementation:       %zu/%zu passed (%.2f s)\n",
              cpp_run.passed, cpp_run.total, Seconds(t0));

  otgo::GoMergeEngine go;
  t0 = NowNs();
  mbtcg::RunReport go_run = mbtcg::RunTestCases(cases, &go);
  std::printf("Go   implementation:      %zu/%zu passed (%.2f s)\n",
              go_run.passed, go_run.total, Seconds(t0));

  for (const std::string& f : cpp_run.failures) {
    std::printf("  C++ FAIL: %s\n", f.c_str());
  }
  for (const std::string& f : go_run.failures) {
    std::printf("  Go  FAIL: %s\n", f.c_str());
  }

  // Emitted-file size, for the record (the paper compiled its generated
  // tests with Realm's unit-test framework).
  std::string file = mbtcg::GenerateCppTestFile(cases);
  std::printf("\ngenerated gtest source:   %.1f MB across %zu tests\n",
              static_cast<double>(file.size()) / 1e6, cases.size());
  std::printf("paper reference: all 4,913 generated cases passed, giving "
              "100%% branch coverage\n");
  std::printf("and confidence that the C++ and Golang merge rules always "
              "agree.\n");

  bench.AddResult("cases_generated", static_cast<double>(cases.size()));
  bench.AddResult("generation_seconds", baseline_seconds);
  bench.AddResult("cpp_passed", static_cast<double>(cpp_run.passed));
  bench.AddResult("go_passed", static_cast<double>(go_run.passed));
  return bench.Finish((cpp_run.all_passed() && go_run.all_passed()) ? 0 : 1);
}
