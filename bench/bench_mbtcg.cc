// Experiment E6 (§5.2): exhaustive test-case generation. The paper: "For
// an initial array containing three elements and with three clients each
// performing a single operation, the Golang program generated 4,913 C++
// test cases", all of which passed, proving the TLA+ spec, the C++
// implementation, and the Golang implementation agree.
//
// This bench runs the whole pipeline — model check, DOT dump, DOT parse,
// extraction, in-process execution against BOTH implementations — and
// times each stage.

#include <chrono>
#include <cstdio>

#include "mbtcg/generator.h"
#include "otgo/go_merge.h"

using namespace xmodel;  // NOLINT — bench binaries only.

namespace {

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main() {
  std::printf("E6: model-based test-case generation, end to end\n\n");

  specs::ArrayOtConfig config;  // The paper's configuration.
  std::vector<mbtcg::TestCase> cases;
  auto t0 = std::chrono::steady_clock::now();
  mbtcg::GenerationReport generation =
      mbtcg::GenerateTestCases(config, &cases);
  double generation_seconds = Seconds(t0);
  if (!generation.status.ok()) {
    std::printf("generation failed: %s\n",
                generation.status.ToString().c_str());
    return 1;
  }

  std::printf("spec states explored:     %llu (model check %.2f s)\n",
              static_cast<unsigned long long>(generation.spec_states),
              generation.model_check_seconds);
  std::printf("DOT dump parsed back:     %.1f MB\n",
              static_cast<double>(generation.dot_bytes) / 1e6);
  std::printf("test cases generated:     %zu   (paper: 4,913)\n",
              cases.size());
  std::printf("pipeline total:           %.2f s\n\n", generation_seconds);

  t0 = std::chrono::steady_clock::now();
  mbtcg::RunReport cpp_run = mbtcg::RunTestCases(cases);
  std::printf("C++ implementation:       %zu/%zu passed (%.2f s)\n",
              cpp_run.passed, cpp_run.total, Seconds(t0));

  otgo::GoMergeEngine go;
  t0 = std::chrono::steady_clock::now();
  mbtcg::RunReport go_run = mbtcg::RunTestCases(cases, &go);
  std::printf("Go   implementation:      %zu/%zu passed (%.2f s)\n",
              go_run.passed, go_run.total, Seconds(t0));

  for (const std::string& f : cpp_run.failures) {
    std::printf("  C++ FAIL: %s\n", f.c_str());
  }
  for (const std::string& f : go_run.failures) {
    std::printf("  Go  FAIL: %s\n", f.c_str());
  }

  // Emitted-file size, for the record (the paper compiled its generated
  // tests with Realm's unit-test framework).
  std::string file = mbtcg::GenerateCppTestFile(cases);
  std::printf("\ngenerated gtest source:   %.1f MB across %zu tests\n",
              static_cast<double>(file.size()) / 1e6, cases.size());
  std::printf("paper reference: all 4,913 generated cases passed, giving "
              "100%% branch coverage\n");
  std::printf("and confidence that the C++ and Golang merge rules always "
              "agree.\n");

  return (cpp_run.all_passed() && go_run.all_passed()) ? 0 : 1;
}
