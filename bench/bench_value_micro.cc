// Microbenchmark for the interned value layer (DESIGN.md "Value
// representation & interning"): construction rates for inline scalars and
// hash-consed composites, copy and comparison throughput, the intern-table
// hit ratio under checker-like churn, and a State::With successor loop
// exercising the O(1) incremental fingerprint path.
//
// Reports BENCH_value_micro.json via the shared harness; --quick shrinks
// the iteration counts for the CI smoke job.

#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "tlax/state.h"
#include "tlax/value.h"

using xmodel::common::MonotonicClock;
using xmodel::tlax::State;
using xmodel::tlax::Value;

namespace {

// Rate of `iters` repetitions measured through the real clock; the
// returned ops/sec lands in the report under `key`.
template <typename Body>
double MeasureRate(xmodel::bench::Harness* bench, const char* key,
                   int64_t iters, Body body) {
  MonotonicClock* clock = MonotonicClock::Real();
  const int64_t start = clock->NowNanos();
  for (int64_t i = 0; i < iters; ++i) body(i);
  const double seconds =
      static_cast<double>(clock->NowNanos() - start) * 1e-9;
  const double rate =
      seconds > 0 ? static_cast<double>(iters) / seconds : 0;
  std::printf("%-32s %12lld iters  %10.0f ops/sec\n", key,
              static_cast<long long>(iters), rate);
  bench->AddResult(key, rate);
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  xmodel::bench::Harness bench("value_micro", argc, argv);
  const int64_t iters = bench.quick() ? 200'000 : 2'000'000;
  uint64_t sink = 0;  // Defeats dead-code elimination.

  std::printf("value layer microbenchmarks (%s mode)\n\n",
              bench.quick() ? "quick" : "full");

  MeasureRate(&bench, "int_construct_per_sec", iters, [&](int64_t i) {
    sink ^= Value::Int(i & 1023).hash();
  });
  MeasureRate(&bench, "short_str_construct_per_sec", iters, [&](int64_t i) {
    sink ^= Value::Str((i & 1) != 0 ? "Leader" : "Follower").hash();
  });
  MeasureRate(&bench, "seq_intern_hit_per_sec", iters, [&](int64_t i) {
    // Cycles a small pool of sequences, the checker's steady state: every
    // construction after the first round is an intern hit.
    sink ^= Value::Seq({Value::Int(i & 7), Value::Str("Leader"),
                        Value::Int((i >> 3) & 7)})
                .hash();
  });

  Value composite = Value::Record(
      {{"role", Value::Seq({Value::Str("Leader"), Value::Str("Follower"),
                            Value::Str("Follower")})},
       {"term", Value::Seq({Value::Int(2), Value::Int(2), Value::Int(1)})}});
  MeasureRate(&bench, "value_copy_per_sec", iters, [&](int64_t i) {
    Value copy = composite;  // A 16-byte store, no refcount traffic.
    sink ^= copy.hash() + static_cast<uint64_t>(i);
  });

  Value equal_twin = Value::Record(
      {{"role", Value::Seq({Value::Str("Leader"), Value::Str("Follower"),
                            Value::Str("Follower")})},
       {"term", Value::Seq({Value::Int(2), Value::Int(2), Value::Int(1)})}});
  Value different = equal_twin.WithField(
      "term", Value::Seq({Value::Int(1), Value::Int(1), Value::Int(1)}));
  MeasureRate(&bench, "compare_equal_per_sec", iters, [&](int64_t) {
    sink ^= static_cast<uint64_t>(composite == equal_twin);
  });
  MeasureRate(&bench, "compare_unequal_per_sec", iters, [&](int64_t) {
    sink ^= static_cast<uint64_t>(composite == different);
  });

  // Intern hit ratio over a churn loop shaped like checker expansion:
  // functional updates over a bounded value domain.
  {
    const Value::InternStats before = Value::GetInternStats();
    Value oplog = Value::EmptySeq();
    for (int64_t i = 0; i < iters / 4; ++i) {
      oplog = oplog.size() >= 3 ? Value::EmptySeq()
                                : oplog.Append(Value::Int(i & 3));
      sink ^= oplog.hash();
    }
    const Value::InternStats after = Value::GetInternStats();
    const uint64_t hits = after.hits - before.hits;
    const uint64_t misses = after.misses - before.misses;
    const double ratio =
        hits + misses > 0
            ? static_cast<double>(hits) / static_cast<double>(hits + misses)
            : 0;
    std::printf("%-32s %.4f (%llu hits, %llu misses)\n", "intern_hit_ratio",
                ratio, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));
    bench.AddResult("intern_hit_ratio", ratio);
    bench.AddResult("intern_live_reps",
                    static_cast<double>(after.live));
    bench.AddResult("intern_table_bytes",
                    static_cast<double>(after.bytes));
  }

  // State::With successor churn: one write per iteration against a
  // RaftMongo-shaped 5-variable state, the checker's inner loop.
  {
    std::vector<Value> vars = {
        Value::Seq({Value::Str("Leader"), Value::Str("Follower"),
                    Value::Str("Follower")}),
        Value::Seq({Value::Int(1), Value::Int(1), Value::Int(1)}),
        Value::Seq({Value::Int(0), Value::Int(0), Value::Int(0)}),
        Value::Seq({Value::EmptySeq(), Value::EmptySeq(),
                    Value::EmptySeq()}),
        Value::Seq({Value::Int(0), Value::Int(0), Value::Int(0)}),
    };
    State state(vars);
    std::vector<Value> terms;
    for (int t = 0; t < 8; ++t) {
      terms.push_back(Value::Seq(
          {Value::Int(t & 3), Value::Int((t >> 1) & 3), Value::Int(1)}));
    }
    MeasureRate(&bench, "state_with_per_sec", iters, [&](int64_t i) {
      State next = state.With(1, terms[static_cast<size_t>(i & 7)]);
      sink ^= next.fingerprint();
    });
  }

  if (sink == 0xdeadbeef) std::printf("(sink)\n");  // Keep `sink` live.
  return bench.Finish(0);
}
