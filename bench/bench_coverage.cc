// Experiment E7 (§5.2): merge-rule branch coverage by testing strategy.
// The paper's table:
//
//   36 handwritten C++ tests        18 / 86 branches (21%)
//   AFL fuzz-transform, ~8M execs   79 / 86 branches (92%)
//   4,913 generated test cases      86 / 86 branches (100%)
//
// This bench measures the same three suites against our merge rules'
// declared branch universe, plus the fuzzer's coverage growth curve.

#include <cstdio>

#include "bench_util.h"
#include "fuzz/transform_fuzzer.h"
#include "mbtcg/generator.h"
#include "ot/coverage.h"
#include "ot/fixture.h"
#include "ot/handwritten_cases.h"

using namespace xmodel;  // NOLINT — bench binaries only.

namespace {

void PrintRow(const char* label, size_t covered, size_t total,
              const char* paper) {
  std::printf("%-36s %3zu / %zu branches (%3.0f%%)   paper: %s\n", label,
              covered, total,
              100.0 * static_cast<double>(covered) /
                  static_cast<double>(total),
              paper);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness bench("coverage", argc, argv);
  std::printf("E7: branch coverage of the array merge rules by strategy\n\n");
  auto& registry = ot::CoverageRegistry::Instance();
  const size_t total = registry.total_branches();
  if (total == 0) return bench.Fail("empty branch universe");

  // 1. The 36 handwritten tests.
  registry.Reset();
  for (const ot::HandwrittenCase& c : ot::HandwrittenCases()) {
    ot::TransformArrayFixture fixture(static_cast<int>(c.client_ops.size()),
                                      c.initial);
    for (size_t i = 0; i < c.client_ops.size(); ++i) {
      fixture.transaction(static_cast<int>(i), c.client_ops[i]);
    }
    fixture.sync_all_clients();
  }
  PrintRow("36 handwritten tests", registry.covered_branches(), total,
           "18/86 (21%)");

  // 2. The randomized fuzzer, with its growth curve.
  registry.Reset();
  std::printf("\nfuzzer coverage growth (swap-enabled workloads):\n");
  uint64_t executions[] = {10, 50, 200, 1'000, 10'000, 200'000};
  const uint64_t max_executions = bench.quick() ? 10'000 : 200'000;
  uint64_t done = 0;
  fuzz::FuzzOptions options;
  options.include_swap = true;
  for (uint64_t target : executions) {
    if (target > max_executions) break;
    options.seed = 1 + done;  // Continue with fresh randomness.
    options.iterations = target - done;
    fuzz::FuzzReport report = fuzz::RunTransformFuzzer(options);
    if (!report.ok()) {
      std::printf("  fuzzer found a failure: %s\n",
                  report.failures.front().c_str());
      return bench.Finish(1);
    }
    done = target;
    std::printf("  after %8llu executions: %zu / %zu branches\n",
                static_cast<unsigned long long>(done),
                registry.covered_branches(), total);
  }
  size_t fuzz_covered = registry.covered_branches();
  std::printf("\n");
  PrintRow("randomized fuzzer (plateau)", fuzz_covered, total,
           "79/86 (92%) after ~8M execs");

  // 3. The generated suites (both merge directions; the swap-enabled
  // configuration, since the universe includes the swap rules).
  registry.Reset();
  size_t generated_cases = 0;
  for (bool descending : {false, true}) {
    specs::ArrayOtConfig config;
    config.include_swap = true;
    config.merge_descending = descending;
    std::vector<mbtcg::TestCase> cases;
    mbtcg::GenerationReport generation =
        mbtcg::GenerateTestCases(config, &cases);
    if (!generation.status.ok()) {
      return bench.Fail(generation.status.ToString());
    }
    mbtcg::RunReport run = mbtcg::RunTestCases(cases);
    if (!run.all_passed()) {
      std::printf("generated case failed: %s\n", run.failures.front().c_str());
      return bench.Finish(1);
    }
    generated_cases += run.total;
  }
  PrintRow("generated test cases", registry.covered_branches(), total,
           "86/86 (100%)");
  std::printf("  (%zu cases across ascending+descending merge schedules; "
              "the canonical paper\n   configuration alone is 4,913 cases)\n",
              generated_cases);

  bench.AddResult("total_branches", static_cast<double>(total));
  bench.AddResult("fuzz_covered", static_cast<double>(fuzz_covered));
  bench.AddResult("generated_covered",
                  static_cast<double>(registry.covered_branches()));
  bench.AddResult("generated_cases", static_cast<double>(generated_cases));
  if (registry.covered_branches() != total) {
    for (const std::string& name : registry.UncoveredBranches()) {
      std::printf("  STILL UNCOVERED: %s\n", name.c_str());
    }
    return bench.Finish(1);
  }
  return bench.Finish(0);
}
