// Experiment E8 (§4.2.5): the marginal cost of trace-checking a SECOND
// specification. The paper imagines moving from RaftMongo.tla to
// Locking.tla and observes that the state variables are disjoint, the
// events are different, and the post-processing shares almost nothing —
// so the marginal cost approaches the cost of the first spec.
//
// This bench demonstrates the point concretely: it model-checks the
// Locking spec, trace-checks a real lock workload, and tabulates which
// pipeline components were reused versus written fresh.

#include <cstdio>

#include "bench_util.h"
#include "repl/replica_set.h"
#include "specs/locking_spec.h"
#include "tlax/checker.h"
#include "trace/lock_trace.h"

using namespace xmodel;  // NOLINT — bench binaries only.

int main(int argc, char** argv) {
  bench::Harness bench("locking_mbtc", argc, argv);
  std::printf("E8: the second specification (Locking)\n\n");

  const int max_contexts = bench.quick() ? 2 : 3;
  for (int contexts = 1; contexts <= max_contexts; ++contexts) {
    specs::LockingConfig config;
    config.num_contexts = contexts;
    specs::LockingSpec spec(config);
    auto result = tlax::ModelChecker().Check(spec);
    if (!result.status.ok()) {
      return bench.Fail(result.status.ToString());
    }
    std::printf("locking spec, %d contexts: %8llu states  %6.2f s  %s\n",
                contexts,
                static_cast<unsigned long long>(result.distinct_states),
                result.seconds,
                result.violation.has_value() ? result.violation->kind.c_str()
                                             : "invariants hold");
  }

  // Trace-check a real workload: the lock events of a leader serving
  // client writes.
  repl::ReplicaSetConfig rs_config;
  repl::ReplicaSet rs(rs_config);
  trace::LockTraceRecorder recorder(2);
  recorder.Attach(&rs.node(0).lock_manager());
  rs.TryElect(0).ok();
  for (int i = 0; i < 25; ++i) {
    rs.ClientWrite(0, "w").ok();
  }
  auto check = recorder.Check();
  std::printf("\nlock trace from 25 leader writes: %zu events, %s\n",
              recorder.events().size(),
              check.ok() ? "trace PASSES" : check.status.ToString().c_str());

  std::printf("\npipeline reuse between the RaftMongo MBTC and this one:\n");
  std::printf("  reused:   tlax model checker, tlax trace checker, Status/"
              "logging plumbing\n");
  std::printf("  rewritten: event schema (LockEvent vs ReplTraceEvent), "
              "state reconstruction\n");
  std::printf("             (holdings map vs Figure-3 role/term/oplog "
              "rules), spec (disjoint\n");
  std::printf("             variables), instrumentation points (lock "
              "manager vs replication)\n");
  std::printf("\npaper reference: \"the marginal cost of checking each "
              "additional specification\n");
  std::printf("would approach the cost of the first\" — only the checker "
              "core transfers.\n");
  bench.AddResult("lock_trace_events",
                  static_cast<double>(recorder.events().size()));
  bench.AddResult("lock_trace_passes", std::string(check.ok() ? "yes" : "no"));
  return bench.Finish(check.ok() ? 0 : 1);
}
